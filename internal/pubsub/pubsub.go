// Package pubsub implements NewsWire's selective-forwarding layer on top
// of Astrolabe and the application-level multicast (paper §6–7).
//
// Subscriptions live as attributes of the subscriber's Astrolabe leaf row
// and aggregate up the zone hierarchy; publishing is a multicast whose
// forwarding decision at each zone consults the child zone's aggregated
// subscription summary. Three summary representations are implemented:
//
//   - ModeBloom — the paper's design: one Bloom filter attribute per node,
//     OR-aggregated upward; items carry the bit positions of their
//     subjects; a final exact-match test at the leaf discards false
//     positives (§6).
//   - ModeAttributes — the strawman §6 rejects: one boolean attribute per
//     subscription, aggregated by OR. Work and gossip size grow linearly
//     with the number of distinct subscriptions (experiment E8).
//   - ModeCategoryMask — the early prototype of §7: a per-publisher bit
//     mask attribute over a fixed category vocabulary.
//   - ModePredicate — the §7 target design: typed SQL predicates over
//     item metadata (internal/query), compiled to sound Bloom signatures
//     over the subject/publisher/urgency dimensions. The single-filter
//     signature OR-aggregates up the hierarchy as AttrSubs, and a
//     signature set (AttrSubGroups) additionally clusters similar
//     subscriptions into up to K subgroup filters per zone row, so
//     intermediate zones test tight per-cluster filters instead of one
//     saturated OR-of-everything — cutting false-positive forwards.
package pubsub

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/multicast"
	"newswire/internal/news"
	"newswire/internal/query"
	"newswire/internal/sqlagg"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// Mode selects the subscription-summary representation.
type Mode int

// Subscription summary modes.
const (
	ModeBloom Mode = iota + 1
	ModeAttributes
	ModeCategoryMask
	ModePredicate
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBloom:
		return "bloom"
	case ModeAttributes:
		return "attributes"
	case ModeCategoryMask:
		return "category-mask"
	case ModePredicate:
		return "predicate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps a mode name (as printed by Mode.String) back to the
// mode, for CLI flags. Empty selects ModeBloom.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "bloom":
		return ModeBloom, nil
	case "attributes":
		return ModeAttributes, nil
	case "category-mask":
		return ModeCategoryMask, nil
	case "predicate":
		return ModePredicate, nil
	default:
		return 0, fmt.Errorf("pubsub: unknown mode %q (bloom, attributes, category-mask, predicate)", name)
	}
}

// AttrSubPrefix is the attribute-name prefix of ModeAttributes
// subscriptions ("sub_tech/linux" = true).
const AttrSubPrefix = "sub_"

// AttrPubPrefix is the attribute-name prefix of ModeCategoryMask masks
// ("pub_reuters" = category bit mask).
const AttrPubPrefix = "pub_"

// AttrSubGroups is the attribute carrying a zone's subgroup signature set
// (ModePredicate): an encoded bloom.SignatureSet of up to SubgroupK
// per-cluster filters, merged up the hierarchy by astrolabe's
// PrefixSubgroup rule.
const AttrSubGroups = "subg"

// Geometry fixes the Bloom filter shape shared by all participants. It is
// part of the (signed) system configuration, like the aggregation program.
type Geometry struct {
	Bits   int
	Hashes int
}

// DefaultGeometry is the paper's "a thousand bits or more" with single-bit
// hashing of the early prototype.
var DefaultGeometry = Geometry{Bits: bloom.DefaultBits, Hashes: bloom.DefaultHashes}

// Subgroup-count bounds (ModePredicate). K filters per zone row is a
// bandwidth/precision dial: each subgroup filter gossips with the row.
const (
	DefaultSubgroupK = 4
	MaxSubgroupK     = 64
)

// Geometry bounds enforced at Subscriber construction. Filters gossip in
// every row, so runaway sizes are configuration errors, not tuning.
const (
	MinGeometryBits = 8
	MaxGeometryBits = 1 << 20
	MaxGeometryHash = 16
)

// ConfigError reports an invalid Subscriber configuration field. It is a
// typed error so callers can distinguish misconfiguration from runtime
// failures (errors.As).
type ConfigError struct {
	Field string // "Mode", "Geometry", or "SubgroupK"
	Msg   string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("pubsub: invalid %s: %s", e.Field, e.Msg)
}

// Counters collects routing-precision telemetry. All fields are atomic so
// the multicast forwarding path and the leaf delivery path can bump them
// without locks; they live outside gossip state and do not affect the
// deterministic protocol run.
type Counters struct {
	// Forwards counts positive forwarding decisions (zone or leaf).
	Forwards atomic.Int64
	// FalsePositiveDrops counts envelopes that reached the leaf's exact
	// check and were discarded — forwarded work that was wasted.
	FalsePositiveDrops atomic.Int64
	// ExactMatches counts envelopes the leaf's exact check accepted.
	ExactMatches atomic.Int64
	// SubgroupTests counts individual subgroup filters consulted by the
	// ModePredicate forwarding test.
	SubgroupTests atomic.Int64
}

// CounterSnapshot is a point-in-time copy of Counters.
type CounterSnapshot struct {
	Forwards           int64
	FalsePositiveDrops int64
	ExactMatches       int64
	SubgroupTests      int64
}

// Snapshot reads all counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Forwards:           c.Forwards.Load(),
		FalsePositiveDrops: c.FalsePositiveDrops.Load(),
		ExactMatches:       c.ExactMatches.Load(),
		SubgroupTests:      c.SubgroupTests.Load(),
	}
}

// Config configures a Subscriber.
type Config struct {
	// Agent is the Astrolabe agent whose leaf row carries the
	// subscription summary.
	Agent *astrolabe.Agent
	// Mode selects the summary representation. Default ModeBloom.
	Mode Mode
	// Geometry is the Bloom geometry (ModeBloom/ModePredicate). Default
	// DefaultGeometry.
	Geometry Geometry
	// Vocabulary is the category list indexed by ModeCategoryMask masks.
	// Default news.StandardSubjects.
	Vocabulary []string
	// SubgroupK bounds the subgroup filters per zone row (ModePredicate).
	// Default DefaultSubgroupK.
	SubgroupK int
	// Counters, when non-nil, receives leaf delivery telemetry
	// (exact matches vs false-positive drops).
	Counters *Counters
}

// Subscriber manages a node's subscription set, keeps the Astrolabe
// attributes that advertise it in sync, and answers the local
// exact-match/delivery question.
type Subscriber struct {
	cfg   Config
	vocab map[string]int // category -> bit index (ModeCategoryMask)

	mu        sync.Mutex
	subjects  map[string]bool
	perPub    map[string]map[string]bool // publisher -> categories (mask mode)
	predicate *sqlagg.Predicate
	queries   map[string]*query.Predicate // canonical source -> predicate (ModePredicate)
}

// NewSubscriber validates cfg and returns an empty-subscription
// subscriber. Configuration mistakes return a *ConfigError.
func NewSubscriber(cfg Config) (*Subscriber, error) {
	if cfg.Agent == nil {
		return nil, fmt.Errorf("pubsub: agent required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeBloom
	}
	switch cfg.Mode {
	case ModeBloom, ModeAttributes, ModeCategoryMask, ModePredicate:
	default:
		return nil, &ConfigError{Field: "Mode", Msg: fmt.Sprintf("unknown mode %d", cfg.Mode)}
	}
	if cfg.Geometry.Bits == 0 {
		cfg.Geometry = DefaultGeometry
	}
	if cfg.Geometry.Bits < MinGeometryBits || cfg.Geometry.Bits > MaxGeometryBits {
		return nil, &ConfigError{
			Field: "Geometry",
			Msg:   fmt.Sprintf("bits %d outside [%d, %d]", cfg.Geometry.Bits, MinGeometryBits, MaxGeometryBits),
		}
	}
	if cfg.Geometry.Hashes < 1 || cfg.Geometry.Hashes > MaxGeometryHash {
		return nil, &ConfigError{
			Field: "Geometry",
			Msg:   fmt.Sprintf("hashes %d outside [1, %d]", cfg.Geometry.Hashes, MaxGeometryHash),
		}
	}
	if cfg.SubgroupK == 0 {
		cfg.SubgroupK = DefaultSubgroupK
	}
	if cfg.SubgroupK < 1 || cfg.SubgroupK > MaxSubgroupK {
		return nil, &ConfigError{
			Field: "SubgroupK",
			Msg:   fmt.Sprintf("subgroup count %d outside [1, %d]", cfg.SubgroupK, MaxSubgroupK),
		}
	}
	if cfg.Vocabulary == nil {
		cfg.Vocabulary = news.StandardSubjects
	}
	s := &Subscriber{
		cfg:      cfg,
		vocab:    make(map[string]int, len(cfg.Vocabulary)),
		subjects: make(map[string]bool),
		perPub:   make(map[string]map[string]bool),
		queries:  make(map[string]*query.Predicate),
	}
	for i, c := range cfg.Vocabulary {
		s.vocab[c] = i
	}
	return s, nil
}

// Mode returns the subscriber's summary mode.
func (s *Subscriber) Mode() Mode { return s.cfg.Mode }

// Subscribe adds subjects to the subscription set and re-advertises.
func (s *Subscriber) Subscribe(subjects ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, subj := range subjects {
		if subj == "" {
			return fmt.Errorf("pubsub: empty subject")
		}
		if s.cfg.Mode == ModeCategoryMask {
			if _, ok := s.vocab[subj]; !ok {
				return fmt.Errorf("pubsub: subject %q not in category vocabulary", subj)
			}
		}
		s.subjects[subj] = true
	}
	s.advertiseLocked()
	return nil
}

// Unsubscribe removes subjects and re-advertises. Bloom filters do not
// support deletion, so the filter is rebuilt from the remaining set — the
// freshest-row-wins gossip rule replaces the old advertisement wholesale.
func (s *Subscriber) Unsubscribe(subjects ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, subj := range subjects {
		delete(s.subjects, subj)
	}
	s.advertiseLocked()
}

// SubscribePublisher registers interest in specific categories of one
// publisher (the per-publisher interest areas of §7, ModeCategoryMask).
func (s *Subscriber) SubscribePublisher(publisher string, categories ...string) error {
	if s.cfg.Mode != ModeCategoryMask {
		return fmt.Errorf("pubsub: SubscribePublisher requires ModeCategoryMask")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.perPub[publisher]
	if set == nil {
		set = make(map[string]bool)
		s.perPub[publisher] = set
	}
	for _, c := range categories {
		if _, ok := s.vocab[c]; !ok {
			return fmt.Errorf("pubsub: category %q not in vocabulary", c)
		}
		set[c] = true
		s.subjects[c] = true
	}
	s.advertiseLocked()
	return nil
}

// SetPredicate installs an SQL selection predicate over item metadata, the
// "more complex selection criteria based on the meta-data associated with
// the news-items, in the form of an SQL query" (§8). An empty string
// clears it.
func (s *Subscriber) SetPredicate(expr string) error {
	var pred *sqlagg.Predicate
	if expr != "" {
		var err error
		pred, err = sqlagg.ParsePredicate(expr)
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.predicate = pred
	s.mu.Unlock()
	return nil
}

// SubscribeQuery registers a typed predicate subscription (ModePredicate):
// the item is delivered when the predicate matches its metadata exactly,
// and the predicate's compiled Bloom signature joins the advertised
// summary so the hierarchy only forwards items the predicate could match.
// Returns the canonical form of the query.
func (s *Subscriber) SubscribeQuery(src string) (string, error) {
	if s.cfg.Mode != ModePredicate {
		return "", fmt.Errorf("pubsub: SubscribeQuery requires ModePredicate (mode is %s)", s.cfg.Mode)
	}
	p, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries[p.String()] = p
	s.advertiseLocked()
	return p.String(), nil
}

// UnsubscribeQuery removes a predicate subscription by its source (any
// form that parses to the same canonical query) and re-advertises.
func (s *Subscriber) UnsubscribeQuery(src string) error {
	p, err := query.Parse(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.queries, p.String())
	s.advertiseLocked()
	return nil
}

// Queries returns the sorted canonical sources of the current predicate
// subscriptions.
func (s *Subscriber) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.queries))
	for src := range s.queries {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// Subjects returns the sorted current subscription set.
func (s *Subscriber) Subjects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.subjects))
	for subj := range s.subjects {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// advertiseLocked pushes the subscription summary into the agent's row.
func (s *Subscriber) advertiseLocked() {
	switch s.cfg.Mode {
	case ModeBloom:
		f := bloom.New(s.cfg.Geometry.Bits, s.cfg.Geometry.Hashes)
		for subj := range s.subjects {
			f.Add(subj)
		}
		s.cfg.Agent.SetAttr(astrolabe.AttrSubs, value.Bytes(f.Bytes()))

	case ModeAttributes:
		// One boolean attribute per subscription. Clear every sub_*
		// attribute first (unsubscribes), then set the current set.
		updates := make(value.Map)
		for name := range s.ownSubAttrs() {
			updates[name] = value.Invalid()
		}
		for subj := range s.subjects {
			updates[AttrSubPrefix+subj] = value.Bool(true)
		}
		s.cfg.Agent.SetAttrs(updates)

	case ModeCategoryMask:
		updates := make(value.Map)
		for name := range s.ownPubAttrs() {
			updates[name] = value.Invalid()
		}
		for pub, cats := range s.perPub {
			mask := make([]byte, (len(s.cfg.Vocabulary)+7)/8)
			for c := range cats {
				idx := s.vocab[c]
				mask[idx/8] |= 1 << (idx % 8)
			}
			updates[AttrPubPrefix+pub] = value.Bytes(mask)
		}
		s.cfg.Agent.SetAttrs(updates)

	case ModePredicate:
		// One signature filter carries this node's whole subscription set:
		// plain subjects compile as (those subjects, any publisher, any
		// urgency); each predicate contributes its compiled cover. It goes
		// out only as a single-member signature set under AttrSubGroups —
		// PrefixSubgroup clusters ancestors' sets into at most K subgroup
		// filters per zone row. No raw AttrSubs copy: duplicating the
		// filter would roughly double the summary's gossip bytes, and the
		// forwarding test only needs AttrSubs as a fallback for rows
		// whose subgroup attribute is malformed (e.g. mid-scramble).
		f := bloom.New(s.cfg.Geometry.Bits, s.cfg.Geometry.Hashes)
		if len(s.subjects) > 0 {
			subs := make([]string, 0, len(s.subjects))
			for subj := range s.subjects {
				subs = append(subs, subj)
			}
			query.SubjectsSignature(subs).Fill(f)
		}
		for _, p := range s.queries {
			p.Compile().Fill(f)
		}
		s.cfg.Agent.SetAttrs(value.Map{
			astrolabe.AttrSubs: value.Invalid(),
			AttrSubGroups:      value.Bytes(bloom.EncodeSignatureSet(s.cfg.SubgroupK, [][]byte{f.Bytes()})),
		})
	}
}

// ownSubAttrs lists the agent's current sub_* attributes.
func (s *Subscriber) ownSubAttrs() map[string]bool {
	return s.ownPrefixedAttrs(AttrSubPrefix)
}

// ownPubAttrs lists the agent's current pub_* attributes.
func (s *Subscriber) ownPubAttrs() map[string]bool {
	return s.ownPrefixedAttrs(AttrPubPrefix)
}

func (s *Subscriber) ownPrefixedAttrs(prefix string) map[string]bool {
	out := make(map[string]bool)
	rows, ok := s.cfg.Agent.Table(s.cfg.Agent.ZonePath())
	if !ok {
		return out
	}
	for _, r := range rows {
		if r.Name != s.cfg.Agent.Name() {
			continue
		}
		for name := range r.Attrs {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				out[name] = true
			}
		}
	}
	return out
}

// ShouldDeliver is the leaf's final test (§6): an exact subject match
// (discarding Bloom false positives) plus the optional SQL predicate over
// the item's metadata. In ModePredicate, typed query subscriptions also
// match by exact evaluation against the item metadata. Outcomes feed the
// configured Counters: an accept is an exact match, a reject is a
// false-positive drop (the envelope was forwarded here for nothing).
func (s *Subscriber) ShouldDeliver(env *wire.ItemEnvelope) bool {
	s.mu.Lock()
	ok := s.matchesLocked(env)
	s.mu.Unlock()
	if c := s.cfg.Counters; c != nil {
		if ok {
			c.ExactMatches.Add(1)
		} else {
			c.FalsePositiveDrops.Add(1)
		}
	}
	return ok
}

func (s *Subscriber) matchesLocked(env *wire.ItemEnvelope) bool {
	matched := false
	for _, subj := range env.Subjects {
		if s.subjects[subj] {
			matched = true
			break
		}
	}
	if !matched && s.cfg.Mode == ModePredicate && len(s.queries) > 0 {
		row := ItemMetadataRow(env)
		for _, p := range s.queries {
			if p.Match(row) {
				matched = true
				break
			}
		}
	}
	if !matched {
		return false
	}
	if s.cfg.Mode == ModeCategoryMask {
		// Interest is per publisher: the subject must be subscribed for
		// this specific publisher.
		set := s.perPub[env.Publisher]
		if set == nil {
			return false
		}
		pubMatch := false
		for _, subj := range env.Subjects {
			if set[subj] {
				pubMatch = true
				break
			}
		}
		if !pubMatch {
			return false
		}
	}
	if s.predicate != nil {
		return s.predicate.Eval(ItemMetadataRow(env))
	}
	return true
}

// ItemMetadataRow renders an envelope's metadata as an attribute row for
// SQL predicate evaluation.
func ItemMetadataRow(env *wire.ItemEnvelope) value.Map {
	return value.Map{
		"publisher": value.String(env.Publisher),
		"item_id":   value.String(env.ItemID),
		"revision":  value.Int(int64(env.Revision)),
		"urgency":   value.Int(int64(env.Urgency)),
		"subjects":  value.Strings(env.Subjects),
		"published": value.Time(env.Published),
	}
}

// ForwardFilter builds the multicast filter that consults a child row's
// aggregated subscription summary — the conditional-forwarding test of §6.
// It is stateless with respect to any one subscriber: the decision reads
// only the row and the envelope. A non-nil ctr receives forwarding
// telemetry (positive decisions, subgroup filters consulted).
func ForwardFilter(mode Mode, geo Geometry, ctr *Counters) multicast.Filter {
	if geo.Bits == 0 {
		geo = DefaultGeometry
	}
	// Wildcard positions are fixed by the geometry; hash them once, not
	// per decision.
	wildSub := bloom.PositionsFor(query.WildSubject, geo.Bits, geo.Hashes)
	wildPub := bloom.PositionsFor(query.WildPublisher, geo.Bits, geo.Hashes)
	wildUrg := bloom.PositionsFor(query.WildUrgency, geo.Bits, geo.Hashes)
	// One expansion cache per filter closure (one per node): sparse
	// subgroup entries expand once per distinct row payload, not once per
	// forwarding decision.
	cache := &sparseProbeCache{}
	return func(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool {
		forward := false
		switch mode {
		case ModeAttributes:
			for _, subj := range env.Subjects {
				if v, ok := row.Attrs[AttrSubPrefix+subj].AsBool(); ok && v {
					forward = true
					break
				}
			}

		case ModeCategoryMask:
			if mask, ok := row.Attrs[AttrPubPrefix+env.Publisher].RawBytes(); ok {
				for _, pos := range env.SubjectBits {
					if int(pos/8) < len(mask) && mask[pos/8]&(1<<(pos%8)) != 0 {
						forward = true
						break
					}
				}
			}

		case ModePredicate:
			forward = predicateForward(row, env, geo, ctr, cache, wildSub, wildPub, wildUrg)

		default: // ModeBloom
			subs, ok := row.Attrs[astrolabe.AttrSubs].RawBytes()
			if !ok || len(subs) != (geo.Bits+7)/8 {
				return false
			}
			// SubjectBits holds geo.Hashes positions per subject; the
			// item is forwarded if ANY subject fully matches. Test the
			// raw aggregated bytes directly — this runs once per child
			// row per forwarded item, so it must not allocate.
			k := geo.Hashes
		subjects:
			for i := 0; i+k <= len(env.SubjectBits); i += k {
				for _, pos := range env.SubjectBits[i : i+k] {
					if int(pos) >= geo.Bits || subs[pos/8]&(1<<(pos%8)) == 0 {
						continue subjects
					}
				}
				forward = true
				break
			}
		}
		if forward && ctr != nil {
			ctr.Forwards.Add(1)
		}
		return forward
	}
}

// predicateForward is the ModePredicate forwarding test. The row's
// subgroup signature set (AttrSubGroups) is consulted first: the item is
// forwarded when ANY subgroup filter admits it on all three dimensions.
// A row without a well-formed set (older software, or a scrambled row
// mid-repair) falls back to the OR-aggregated AttrSubs filter, which is
// the union of the subgroups and therefore strictly looser — the
// degradation is extra forwards, never lost deliveries. The signature-set
// walk is open-coded so the hot path does not allocate.
func predicateForward(row astrolabe.Row, env *wire.ItemEnvelope, geo Geometry, ctr *Counters, cache *sparseProbeCache, wildSub, wildPub, wildUrg []uint32) bool {
	nbytes := (geo.Bits + 7) / 8
	k := geo.Hashes
	sb := env.SubjectBits
	if len(sb) != (len(env.Subjects)+2)*k {
		// The envelope was encoded under a different mode or geometry;
		// recompute the position groups (allocates — correctness path).
		sb = predicatePositions(env, geo)
	}
	if subg, ok := row.Attrs[AttrSubGroups].RawBytes(); ok {
		enc := subg
		if _, n := binary.Uvarint(enc); n > 0 {
			enc = enc[n:]
			if cnt, n := binary.Uvarint(enc); n > 0 && cnt <= 1<<16 {
				enc = enc[n:]
				wellFormed := true
				for i := uint64(0); i < cnt; i++ {
					l, n := binary.Uvarint(enc)
					if n <= 0 || uint64(len(enc)-n) < l {
						wellFormed = false
						break
					}
					blob := enc[n : n+int(l)]
					enc = enc[n+int(l):]
					if ctr != nil {
						ctr.SubgroupTests.Add(1)
					}
					match, bad := testSubgroupEntry(blob, sb, k, geo.Bits, nbytes, cache, wildSub, wildPub, wildUrg)
					if bad {
						wellFormed = false
						break
					}
					if match {
						return true
					}
				}
				if wellFormed {
					// Every subgroup filter was tested and none admits the
					// item: the whole subtree cannot match it.
					return false
				}
			}
		}
	}
	subs, ok := row.Attrs[astrolabe.AttrSubs].RawBytes()
	if !ok || len(subs) != nbytes {
		return false
	}
	return predicateAdmits(subs, sb, k, geo.Bits, wildSub, wildPub, wildUrg)
}

// testSubgroupEntry tests one encoded subgroup filter entry against an
// item's predicate position groups. Raw entries probe in place; sparse
// entries probe their cached expansion (expanded once per distinct row
// payload). An entry from a different geometry is skipped (match=false),
// a non-parsing one poisons the set (bad=true) so the caller falls back
// to the raw subs summary.
func testSubgroupEntry(blob []byte, sb []uint32, k, bits, nbytes int, cache *sparseProbeCache, wildSub, wildPub, wildUrg []uint32) (match, bad bool) {
	if len(blob) == 0 {
		return false, true
	}
	switch blob[0] {
	case bloom.FilterRaw:
		f := blob[1:]
		if len(f) != nbytes {
			return false, false
		}
		return predicateAdmits(f, sb, k, bits, wildSub, wildPub, wildUrg), false
	case bloom.FilterSparse:
		f, res := cache.expand(blob[1:], nbytes)
		switch res {
		case bloom.SparseOK:
			return predicateAdmits(f, sb, k, bits, wildSub, wildPub, wildUrg), false
		case bloom.SparseWrongSize:
			return false, false
		}
		return false, true
	}
	return false, true
}

// sparseProbeCache amortizes sparse-entry expansion across forwarding
// decisions. Zone rows are copy-on-write shared values, so an entry's
// encoded bytes never mutate in place and a payload is identified by its
// backing array: the cache retains the encoded slice, which pins its
// address and makes pointer identity a sound key. Sixteen slots cover a
// zone's worth of child rows; eviction is a plain ring.
type sparseProbeCache struct {
	mu      sync.Mutex
	entries [16]sparseProbeEntry
	next    int
}

type sparseProbeEntry struct {
	enc      []byte
	expanded []byte
}

// expand returns the expanded bitmap for a sparse payload (the bytes
// after the entry tag). Cached bitmaps are immutable — callers only
// probe them — so they are shared without copying.
func (c *sparseProbeCache) expand(enc []byte, nbytes int) ([]byte, bloom.SparseExpandResult) {
	if len(enc) == 0 || c == nil {
		return nil, bloom.SparseMalformed
	}
	c.mu.Lock()
	for i := range c.entries {
		e := &c.entries[i]
		if len(e.enc) == len(enc) && &e.enc[0] == &enc[0] {
			f := e.expanded
			c.mu.Unlock()
			if len(f) != nbytes {
				return nil, bloom.SparseWrongSize
			}
			return f, bloom.SparseOK
		}
	}
	c.mu.Unlock()
	f := make([]byte, nbytes)
	res := bloom.ExpandSparseFilter(f, enc)
	if res != bloom.SparseOK {
		return nil, res
	}
	c.mu.Lock()
	c.entries[c.next] = sparseProbeEntry{enc: enc, expanded: f}
	c.next = (c.next + 1) % len(c.entries)
	c.mu.Unlock()
	return f, bloom.SparseOK
}

// predicateAdmits tests one signature filter against an item's predicate
// position groups. sb lays out one group of k positions per subject,
// then the publisher group, then the urgency group. The filter admits
// the item when every dimension is satisfied — by its wildcard key
// (dimension unconstrained somewhere in the subtree) or one of the
// item's value keys.
func predicateAdmits(f []byte, sb []uint32, k, bits int, wildSub, wildPub, wildUrg []uint32) bool {
	nsub := len(sb) - 2*k
	if nsub < 0 {
		return false
	}
	if !testPositions(f, bits, wildSub) {
		hit := false
		for i := 0; i+k <= nsub; i += k {
			if testPositions(f, bits, sb[i:i+k]) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	if !testPositions(f, bits, wildPub) && !testPositions(f, bits, sb[nsub:nsub+k]) {
		return false
	}
	return testPositions(f, bits, wildUrg) || testPositions(f, bits, sb[nsub+k:])
}

// testPositions reports whether every position is set in the filter bytes.
func testPositions(f []byte, bits int, pos []uint32) bool {
	for _, p := range pos {
		if int(p) >= bits || f[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// predicatePositions computes an envelope's predicate-mode position
// groups from scratch — the layout EncodeItem emits in ModePredicate.
func predicatePositions(env *wire.ItemEnvelope, geo Geometry) []uint32 {
	out := make([]uint32, 0, (len(env.Subjects)+2)*geo.Hashes)
	for _, subj := range env.Subjects {
		out = append(out, bloom.PositionsFor(query.SubjectKey(subj), geo.Bits, geo.Hashes)...)
	}
	out = append(out, bloom.PositionsFor(query.PublisherKey(env.Publisher), geo.Bits, geo.Hashes)...)
	out = append(out, bloom.PositionsFor(query.UrgencyKey(env.Urgency), geo.Bits, geo.Hashes)...)
	return out
}

// EncodeItem builds the wire envelope for an item: NITF payload, subject
// bit positions for the configured mode, and mirrored routing metadata.
func EncodeItem(it *news.Item, mode Mode, geo Geometry, vocabulary []string) (wire.ItemEnvelope, error) {
	if geo.Bits == 0 {
		geo = DefaultGeometry
	}
	payload, err := news.MarshalNITF(it)
	if err != nil {
		return wire.ItemEnvelope{}, err
	}
	env := wire.ItemEnvelope{
		Publisher: it.Publisher,
		ItemID:    it.ID,
		Revision:  it.Revision,
		Subjects:  append([]string(nil), it.Subjects...),
		Urgency:   it.Urgency,
		Published: it.Published,
		Payload:   payload,
	}
	switch mode {
	case ModeCategoryMask:
		if vocabulary == nil {
			vocabulary = news.StandardSubjects
		}
		idx := make(map[string]int, len(vocabulary))
		for i, c := range vocabulary {
			idx[c] = i
		}
		for _, subj := range it.Subjects {
			i, ok := idx[subj]
			if !ok {
				return wire.ItemEnvelope{}, fmt.Errorf("pubsub: subject %q not in vocabulary", subj)
			}
			env.SubjectBits = append(env.SubjectBits, uint32(i))
		}
	case ModeAttributes:
		// Exact subjects travel in env.Subjects; no bits needed.
	case ModePredicate:
		// One position group per dimension value under its namespaced
		// signature key, in the layout predicateAdmits expects: subjects,
		// then publisher, then urgency.
		env.SubjectBits = predicatePositions(&env, geo)
	default: // ModeBloom
		for _, subj := range it.Subjects {
			env.SubjectBits = append(env.SubjectBits,
				bloom.PositionsFor(subj, geo.Bits, geo.Hashes)...)
		}
	}
	return env, nil
}

// DecodeItem parses the envelope payload back into an item and
// cross-checks the envelope's routing metadata against it, so a forwarder
// cannot smuggle an item into subjects it does not carry.
func DecodeItem(env *wire.ItemEnvelope) (*news.Item, error) {
	it, err := news.UnmarshalNITF(env.Payload)
	if err != nil {
		return nil, err
	}
	if it.Publisher != env.Publisher || it.ID != env.ItemID || it.Revision != env.Revision {
		return nil, fmt.Errorf("pubsub: envelope identity %s does not match payload %s",
			env.Key(), it.Key())
	}
	if len(it.Subjects) != len(env.Subjects) {
		return nil, fmt.Errorf("pubsub: envelope subjects %v do not match payload %v",
			env.Subjects, it.Subjects)
	}
	for i := range it.Subjects {
		if it.Subjects[i] != env.Subjects[i] {
			return nil, fmt.Errorf("pubsub: envelope subjects %v do not match payload %v",
				env.Subjects, it.Subjects)
		}
	}
	return it, nil
}
