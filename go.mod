module newswire

go 1.22
