package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"newswire/internal/core"
	"newswire/internal/sim"
)

var quick = Options{Quick: true, Seed: 1}

// parsePct turns "42.0%" back into 0.42 for assertions.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v / 100
}

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("not a millisecond value: %q", s)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 14 {
		t.Fatalf("got %d runners, want 14", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("runner %s incomplete", r.ID)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "test", Claim: "c",
		Columns: []string{"a", "bee"},
		Notes:   []string{"note"},
	}
	tab.AddRow("1", "2")
	out := tab.String()
	for _, want := range []string{"== X: test", "claim: c", "a", "bee", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1DeliversToEveryoneFast(t *testing.T) {
	tab := RunE1(quick)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		delivered := parsePct(t, row[6])
		// 1% link loss with k=2 redundancy: essentially everyone; the
		// residue is recovered by anti-entropy in steady state (E6).
		if delivered < 0.995 {
			t.Errorf("n=%s delivered %s, want ≈100%%", row[0], row[6])
		}
		p99 := parseMS(t, row[4])
		if p99 > 30000 {
			t.Errorf("n=%s p99 %s exceeds tens of seconds", row[0], row[4])
		}
	}
}

func TestE2ReproducesRedundancyShape(t *testing.T) {
	tab := RunE2(quick)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row with 4 visits/day: the paper's ~70% claim; accept 50–90%.
	var fourVisit []string
	for _, row := range tab.Rows {
		if row[0] == "4" {
			fourVisit = row
		}
	}
	full := parsePct(t, fourVisit[1])
	if full < 0.5 || full > 0.9 {
		t.Errorf("4-visit full-pull redundancy %v, want ~0.7", full)
	}
	// Redundancy grows with visit frequency.
	first := parsePct(t, tab.Rows[0][1])
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][1])
	if !(last > first) {
		t.Errorf("redundancy should grow with visits: %v .. %v", first, last)
	}
	// Push is always 0%.
	for _, row := range tab.Rows {
		if parsePct(t, row[4]) != 0 {
			t.Errorf("push redundancy nonzero: %v", row)
		}
	}
	// Delta never loses to full, and beats it whenever full pays
	// redundancy.
	for _, row := range tab.Rows {
		full, delta := parsePct(t, row[1]), parsePct(t, row[3])
		if delta > full {
			t.Errorf("delta (%s) should not exceed full (%s)", row[3], row[1])
		}
		if full > 0.1 && delta >= full {
			t.Errorf("delta (%s) should beat full (%s)", row[3], row[1])
		}
	}
}

func TestE3AccuracyImprovesWithBits(t *testing.T) {
	tab := RunE3(quick)
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// FP rate at the zone level should fall monotonically in bits
	// (single subscriber count in quick mode).
	prev := 2.0
	for _, row := range tab.Rows {
		fp := parsePct(t, row[4])
		if fp > prev+0.02 {
			t.Errorf("zone FP rate rose with more bits: %v after %v", fp, prev)
		}
		prev = fp
	}
	// The 16384-bit filter should be nearly exact.
	last := tab.Rows[len(tab.Rows)-1]
	if fp := parsePct(t, last[4]); fp > 0.05 {
		t.Errorf("largest filter FP %v, want <5%%", fp)
	}
}

func TestE4PublisherLoadReduced(t *testing.T) {
	tab := RunE4(quick)
	for _, row := range tab.Rows {
		direct, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("bad direct msgs %q", row[1])
		}
		nw, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			t.Fatalf("bad nw msgs %q", row[3])
		}
		if nw >= direct {
			t.Errorf("n=%s: NewsWire publisher sent %d msgs, direct %d — no reduction",
				row[0], nw, direct)
		}
	}
	// Reduction factor grows with audience size.
	if len(tab.Rows) >= 2 {
		first, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[0][5], "x"), 64)
		last, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[len(tab.Rows)-1][5], "x"), 64)
		if last <= first {
			t.Errorf("reduction should grow with audience: %v .. %v", first, last)
		}
	}
}

func TestE5OverloadShape(t *testing.T) {
	tab := RunE5(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Pull served fraction collapses with the multiplier...
	p1 := parsePct(t, tab.Rows[0][1])
	p100 := parsePct(t, tab.Rows[2][1])
	if !(p100 < p1) {
		t.Errorf("pull service should degrade: 1x=%v 100x=%v", p1, p100)
	}
	if p100 > 0.3 {
		t.Errorf("pull service at 100x = %v, want collapse", p100)
	}
	// ...while NewsWire keeps delivering the legitimate stream.
	for _, row := range tab.Rows {
		if nw := parsePct(t, row[2]); nw < 0.95 {
			t.Errorf("demand %s: NewsWire delivered only %v of legit items", row[0], nw)
		}
	}
	// The flood is clipped at higher multipliers.
	f100 := parsePct(t, tab.Rows[2][3])
	if f100 > 0.5 {
		t.Errorf("flood delivery fraction %v at 100x, want clipped", f100)
	}
}

func TestE6RedundancyHelps(t *testing.T) {
	tab := RunE6(quick)
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]+"/"+row[2]] = row
	}
	// No failures: near-perfect delivery (k=1 can drop a copy to the 1%
	// link loss before recovery; k=3 should be essentially complete).
	row := byKey["0.0%/1/off"]
	if row == nil {
		t.Fatalf("missing baseline row: %v", tab.Rows)
	}
	if d := parsePct(t, row[3]); d < 0.95 {
		t.Errorf("no-failure k=1 delivery %v, want ≥95%%", d)
	}
	if d := parsePct(t, byKey["0.0%/3/off"][3]); d < 0.995 {
		t.Errorf("no-failure k=3 delivery %v, want ≈100%%", d)
	}
	// With 10% killed, k=3 must beat k=1 before recovery.
	k1 := parsePct(t, byKey["10.0%/1/off"][3])
	k3 := parsePct(t, byKey["10.0%/3/off"][3])
	if !(k3 >= k1) {
		t.Errorf("k=3 (%v) should not lose to k=1 (%v) under failures", k3, k1)
	}
	// The tentpole ablation: with the first item's single-rep forwarders
	// crashed mid-flight, ack/retry with failover keeps delivery ≥99%
	// while fire-and-forget visibly loses zones.
	fcOn := parsePct(t, byKey["fwd-crash/1/on"][3])
	fcOff := parsePct(t, byKey["fwd-crash/1/off"][3])
	if fcOn < 0.99 {
		t.Errorf("fwd-crash retry-on delivery %v, want ≥99%%", fcOn)
	}
	if !(fcOn > fcOff) {
		t.Errorf("retry-on (%v) should beat retry-off (%v) under forwarder crash", fcOn, fcOff)
	}
	if byKey["fwd-crash/1/on"][5] == "0" {
		t.Error("fwd-crash retry-on row shows no retries")
	}
	if byKey["fwd-crash/1/on"][6] == "0" {
		t.Error("fwd-crash retry-on row shows no failovers")
	}
	// Recovery closes the gap for every row. Exception: fwd-crash with
	// retry off blacks out entire zones, and zone-peer recovery cannot
	// conjure an item no zone member ever received — that row only has
	// to not regress.
	for _, row := range tab.Rows {
		before := parsePct(t, row[3])
		after := parsePct(t, row[4])
		if after+1e-9 < before {
			t.Errorf("recovery reduced delivery: %v -> %v", before, after)
		}
		if row[0] == "fwd-crash" && row[2] == "off" {
			continue
		}
		if after < 0.99 {
			t.Errorf("after recovery %v, want ~100%% (row %v)", after, row)
		}
	}
}

func TestE7ConvergesWithinTensOfSeconds(t *testing.T) {
	tab := RunE7(quick)
	// KB/node/round by size and mode, to check the delta-gossip savings.
	kb := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if row[3] == "never" || row[5] == "never" {
			t.Fatalf("n=%s mode=%s never converged: %v", row[0], row[1], row)
		}
		rounds, _ := strconv.Atoi(row[5])
		if rounds > 30 { // 30 rounds × 2s = 60s
			t.Errorf("n=%s mode=%s took %d rounds, exceeding tens of seconds",
				row[0], row[1], rounds)
		}
		v, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("bad KB/node/round %q", row[6])
		}
		if kb[row[0]] == nil {
			kb[row[0]] = map[string]float64{}
		}
		kb[row[0]][row[1]] = v
	}
	for n, modes := range kb {
		if modes["delta"] >= modes["full"] {
			t.Errorf("n=%s: delta gossip used %.2f KB/node/round, full %.2f — no savings",
				n, modes["delta"], modes["full"])
		}
	}
}

// TestE7DeltaEquivalenceUnderLoss checks the protocol-equivalence claim
// behind the delta-gossip ablation: on a lossy network, agents running
// digest-based delta anti-entropy converge to the same zone-table
// contents as agents running the full-state protocol. Issue times,
// owners and signatures legitimately differ between the two runs (loss
// and latency sampling diverges as soon as the message streams differ),
// so rows are compared by their canonical attribute encodings, which
// cover exactly the replicated content.
func TestE7DeltaEquivalenceUnderLoss(t *testing.T) {
	build := func(fullState bool) *core.Cluster {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 32, Branching: 8, Seed: 7,
			Link: sim.LinkModel{
				LatencyMin: 20 * time.Millisecond,
				LatencyMax: 180 * time.Millisecond,
				LossRate:   0.10,
			},
			Customize: func(i int, cfg *core.Config) {
				cfg.DisableDeltaGossip = fullState
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cluster.RunRounds(30)
		// A content change mid-run must propagate identically.
		if err := cluster.Nodes[16].Subscribe("culture/books"); err != nil {
			t.Fatal(err)
		}
		cluster.RunRounds(40)
		return cluster
	}
	full := build(true)
	delta := build(false)

	for i := range full.Nodes {
		fa, da := full.Nodes[i].Agent(), delta.Nodes[i].Agent()
		for _, zone := range fa.Chain() {
			frows, _ := fa.Table(zone)
			drows, _ := da.Table(zone)
			if len(frows) != len(drows) {
				t.Fatalf("node %d zone %s: full has %d rows, delta %d",
					i, zone, len(frows), len(drows))
			}
			for j := range frows {
				if frows[j].Name != drows[j].Name {
					t.Fatalf("node %d zone %s row %d: full %q vs delta %q",
						i, zone, j, frows[j].Name, drows[j].Name)
				}
				fe := frows[j].Attrs.AppendBinary(nil)
				de := drows[j].Attrs.AppendBinary(nil)
				if !bytes.Equal(fe, de) {
					t.Errorf("node %d zone %s row %s content differs:\nfull : %v\ndelta: %v",
						i, zone, frows[j].Name, frows[j].Attrs, drows[j].Attrs)
				}
			}
		}
	}
}

func TestE8AttributesScaleWorse(t *testing.T) {
	tab := e8Quick(t)
	// Index rows by (subscriptions, mode).
	rows := map[string]map[string][]string{}
	for _, row := range tab.Rows {
		if rows[row[0]] == nil {
			rows[row[0]] = map[string][]string{}
		}
		rows[row[0]][row[1]] = row
	}
	big := rows["256"]
	if big == nil || big["bloom"] == nil || big["attributes"] == nil {
		t.Fatalf("missing 256-subscription rows: %v", tab.Rows)
	}
	bloomAttrs, _ := strconv.Atoi(big["bloom"][2])
	attrAttrs, _ := strconv.Atoi(big["attributes"][2])
	if attrAttrs <= bloomAttrs {
		t.Errorf("attribute mode row size (%d) should exceed bloom (%d)", attrAttrs, bloomAttrs)
	}
	// Attribute-mode row size grows with subscriptions; bloom stays flat.
	small := rows["16"]
	smallAttrAttrs, _ := strconv.Atoi(small["attributes"][2])
	if attrAttrs <= smallAttrAttrs {
		t.Errorf("attribute rows should grow with subscriptions: %d -> %d",
			smallAttrAttrs, attrAttrs)
	}
	smallBloomAttrs, _ := strconv.Atoi(small["bloom"][2])
	if bloomAttrs > smallBloomAttrs+2 {
		t.Errorf("bloom rows should stay ~flat: %d -> %d", smallBloomAttrs, bloomAttrs)
	}
}

// e8Cache runs the quick E8 sweep once for all E8 tests (the sweep
// simulates six clusters; sharing it keeps the suite fast).
var e8Cache *Table

func e8Quick(t *testing.T) *Table {
	t.Helper()
	if e8Cache == nil {
		e8Cache = RunE8(quick)
	}
	return e8Cache
}

func TestE8PredicatePrecision(t *testing.T) {
	tab := e8Quick(t)
	byMode := map[string]map[int]PrecisionRow{}
	for _, p := range tab.Precision {
		if byMode[p.Mode] == nil {
			byMode[p.Mode] = map[int]PrecisionRow{}
		}
		byMode[p.Mode][p.Subscriptions] = p
	}
	for _, subs := range []int{16, 256} {
		bloom, okB := byMode["bloom"][subs]
		pred, okP := byMode["predicate"][subs]
		if !okB || !okP {
			t.Fatalf("missing precision rows for %d subscriptions: %+v", subs, tab.Precision)
		}
		// Equal recall: both arms must deliver the full exact-match set.
		if bloom.Recall < 0.999 || pred.Recall < 0.999 {
			t.Errorf("%d subs: recall below 1.0: bloom %.3f predicate %.3f",
				subs, bloom.Recall, pred.Recall)
		}
		// The tentpole claim: compiled signatures at least halve the
		// false-positive forwards the leaf has to discard.
		if pred.FPDrops*2 > bloom.FPDrops {
			t.Errorf("%d subs: predicate fp drops %d not <= half of bloom's %d",
				subs, pred.FPDrops, bloom.FPDrops)
		}
		if bloom.FPDrops == 0 {
			t.Errorf("%d subs: workload produced no bloom false positives; sweep is vacuous", subs)
		}
		if pred.SubgroupFilters == 0 {
			t.Errorf("%d subs: predicate arm advertised no subgroup filters", subs)
		}
		// The precision must not be bought with gossip bytes: predicate
		// summaries stay within 10% of bloom's steady-state volume.
		if pred.BytesPerRoundPerNode > bloom.BytesPerRoundPerNode*1.10 {
			t.Errorf("%d subs: predicate bytes/round/node %.0f exceeds bloom %.0f by >10%%",
				subs, pred.BytesPerRoundPerNode, bloom.BytesPerRoundPerNode)
		}
	}
}

func TestA1UrgencyStrategyPrioritizes(t *testing.T) {
	tab := RunA1(quick)
	byStrategy := map[string][]string{}
	for _, row := range tab.Rows {
		byStrategy[row[0]] = row
	}
	fifoUrgent := parseMS(t, byStrategy["fifo"][2])
	urgUrgent := parseMS(t, byStrategy["urgency"][2])
	if !(urgUrgent < fifoUrgent) {
		t.Errorf("urgency-first p99 urgent wait (%v) should beat FIFO (%v)",
			urgUrgent, fifoUrgent)
	}
}

func TestA2LoadAwareElectionShiftsWork(t *testing.T) {
	tab := RunA2(quick)
	byPolicy := map[string][]string{}
	for _, row := range tab.Rows {
		byPolicy[row[0]] = row
	}
	minLoad := parsePct(t, byPolicy["min-load"][3])
	random := parsePct(t, byPolicy["random"][3])
	if !(minLoad < random) {
		t.Errorf("min-load share %v should be below random %v", minLoad, random)
	}
}

func TestA3ScopingContainsTraffic(t *testing.T) {
	tab := RunA3(quick)
	byScope := map[string][]string{}
	for _, row := range tab.Rows {
		byScope[row[0]] = row
	}
	rootMsgs, _ := strconv.ParseInt(byScope["/"][2], 10, 64)
	regionalMsgs, _ := strconv.ParseInt(byScope["regional"][2], 10, 64)
	if !(regionalMsgs < rootMsgs) {
		t.Errorf("regional scope used %d msgs, root %d — no containment",
			regionalMsgs, rootMsgs)
	}
	rootDel, _ := strconv.ParseInt(byScope["/"][1], 10, 64)
	regDel, _ := strconv.ParseInt(byScope["regional"][1], 10, 64)
	if !(regDel < rootDel) {
		t.Errorf("regional deliveries %d should be below root %d", regDel, rootDel)
	}
}

func TestA4FanoutSpeedsConvergence(t *testing.T) {
	tab := RunA4(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	r1, _ := strconv.Atoi(tab.Rows[0][1])
	r3, _ := strconv.Atoi(tab.Rows[2][1])
	if r1 == 0 || r3 == 0 {
		t.Fatalf("convergence failed: %v", tab.Rows)
	}
	if r3 > r1 {
		t.Errorf("fanout 3 (%d rounds) should not converge slower than fanout 1 (%d)", r3, r1)
	}
	m1, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	m3, _ := strconv.ParseFloat(tab.Rows[2][2], 64)
	if !(m3 > m1) {
		t.Errorf("fanout 3 should cost more messages: %v vs %v", m3, m1)
	}
}
