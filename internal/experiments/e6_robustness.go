package experiments

import (
	"fmt"
	"time"

	"newswire/internal/core"
	"newswire/internal/news"
)

// e6AckTimeout is the retry arm's ack deadline. Virtual link latency
// tops out at 180ms, so 1s cleanly separates "slow" from "lost" while
// leaving room for several backoff doublings inside the run window.
const e6AckTimeout = time.Second

// RunE6 measures delivery under forwarder failure with and without
// k-redundant representatives, ack/retry forwarding, and cache-based
// end-to-end recovery — the §9–10 machinery ("multiple representatives
// to forward a new item, to increase the robustness of the delivery";
// "the same cache is used for assisting in achieving end-to-end
// reliability in the case of forwarding node failures").
//
// Each (killed, k) case runs twice: retry off (fire-and-forget
// forwarding, the original protocol) and retry on (per-forward acks,
// retransmission with exponential backoff, representative failover).
// The final rows crash the very nodes the publisher's first item was
// forwarded through, while the forwards are still in flight — the
// crash-during-forward fault that redundancy alone cannot mask at k=1.
func RunE6(opt Options) *Table {
	killFractions := []float64{0, 0.05, 0.10, 0.20}
	repCounts := []int{1, 2, 3}
	if opt.Quick {
		killFractions = []float64{0, 0.10}
		repCounts = []int{1, 3}
	}
	n := 192
	if opt.Quick {
		n = 96
	}
	t := &Table{
		ID:    "E6",
		Title: "delivery under forwarder failure (k reps, ack/retry, cache recovery)",
		Claim: "redundant reps + ack/retry + cache recovery preserve delivery (§9-10)",
		Columns: []string{"killed", "k", "retry", "delivered", "after recovery",
			"retries", "failovers", "dup forwards"},
	}

	const itemCount = 10
	for _, phi := range killFractions {
		for _, k := range repCounts {
			for _, retry := range []bool{false, true} {
				row := runE6Case(opt.Seed, n, phi, k, itemCount, retry)
				t.AddRow(row...)
			}
		}
	}
	for _, retry := range []bool{false, true} {
		row, rep := runE6ForwarderCrash(opt.Seed, n, itemCount, retry, opt.Trace)
		t.AddRow(row...)
		if rep != nil {
			t.Traces = append(t.Traces, rep)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d nodes, branching 16; failures injected right before publishing (tables still list the dead)", n),
		"'delivered' counts live subscribers only; recovery = one RecoverFromZonePeer round",
		fmt.Sprintf("retry=on: acks per forward, %v deadline, exponential backoff, failover to the next listed representative", e6AckTimeout),
		"fwd-crash: k=1, the first item's actual zone-level forwarders crash 10ms after publish, with forwards still in flight")
	return t
}

// newE6Cluster builds the shared cluster shape for E6 cases.
func newE6Cluster(seed int64, n, k int, retry, traced bool) (*core.Cluster, error) {
	return core.NewCluster(core.ClusterConfig{
		N: n, Branching: 16, Seed: seed, Trace: traced,
		Customize: func(i int, cfg *core.Config) {
			cfg.RepCount = k
			if retry {
				cfg.AckTimeout = e6AckTimeout
			}
		},
	})
}

func runE6Case(seed int64, n int, phi float64, k, itemCount int, retry bool) []string {
	cluster, err := newE6Cluster(seed+int64(phi*100)+int64(k), n, k, retry, false)
	if err != nil {
		return []string{"error", err.Error(), "", "", "", "", "", ""}
	}
	for _, node := range cluster.Nodes {
		_ = node.Subscribe("tech/security")
	}
	cluster.RunRounds(10)

	// Kill a fraction of nodes (never the publisher, node 0) right
	// before publishing so every table still lists them as live
	// representatives.
	killed := int(phi * float64(n))
	for i := 0; i < killed; i++ {
		victim := cluster.Nodes[1+(i*7)%(n-1)]
		cluster.Net.Crash(victim.Addr())
	}

	pubAt := cluster.Eng.Now()
	for i := 0; i < itemCount; i++ {
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("rob-%d", i),
			Headline: "x", Body: "y",
			Subjects:  []string{"tech/security"},
			Published: pubAt,
		}
		_ = cluster.Nodes[0].PublishItem(it, "", "")
	}
	cluster.RunFor(20 * time.Second)

	return e6Tally(cluster, phi, fmtPct(phi), k, itemCount, retry)
}

// runE6ForwarderCrash is the crash-during-forward scenario: publish with
// k=1, then crash the exact representatives the publisher's first item
// was handed to — 10ms after publish, under the minimum 20ms link
// latency, so the forwards are lost mid-flight. Without retries every
// zone behind a crashed forwarder misses the item; with retries the
// publisher's ack deadline fires and fails over to the next listed
// representative of the same zone.
func runE6ForwarderCrash(seed int64, n, itemCount int, retry, traced bool) ([]string, *TraceReport) {
	const k = 1
	cluster, err := newE6Cluster(seed+9001, n, k, retry, traced)
	if err != nil {
		return []string{"error", err.Error(), "", "", "", "", "", ""}, nil
	}
	for _, node := range cluster.Nodes {
		_ = node.Subscribe("tech/security")
	}
	cluster.RunRounds(10)

	pub := cluster.Nodes[0]
	pubAt := cluster.Eng.Now()
	for i := 0; i < itemCount; i++ {
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("fwd-%d", i),
			Headline: "x", Body: "y",
			Subjects:  []string{"tech/security"},
			Published: pubAt,
		}
		_ = pub.PublishItem(it, "", "")
	}

	// Publishing routes synchronously, so the forwarding log already
	// names the first item's zone-level destinations (leaf-zone deliver
	// copies log under the publisher's own zone path and are excluded —
	// crashing plain subscribers tests nothing about forwarding).
	firstKey := ""
	victims := make(map[string]bool)
	for _, e := range pub.Router().Log() {
		if firstKey == "" && e.Zone != pub.ZonePath() {
			firstKey = e.Key
		}
		if e.Key != firstKey || e.Zone == pub.ZonePath() {
			continue
		}
		for _, d := range e.Dests {
			if d != pub.Addr() {
				victims[d] = true
			}
		}
	}
	for v := range victims {
		cluster.Net.CrashAfter(v, 10*time.Millisecond)
	}
	cluster.RunFor(30 * time.Second)

	row := e6Tally(cluster, float64(len(victims))/float64(n), "fwd-crash", k, itemCount, retry)
	var rep *TraceReport
	if traced {
		label := "E6 fwd-crash retry=off"
		if retry {
			label = "E6 fwd-crash retry=on"
		}
		rep = BuildTraceReport(label, cluster.TraceSpans(), 2)
	}
	return row, rep
}

// e6Tally measures delivery before and after cache recovery and renders
// one table row.
func e6Tally(cluster *core.Cluster, phi float64, label string, k, itemCount int, retry bool) []string {
	liveNodes := 0
	var got int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		liveNodes++
		got += node.Delivered()
	}
	want := int64(liveNodes * itemCount)
	before := float64(got) / float64(want)

	// End-to-end recovery: every live node that missed something asks a
	// zone peer's cache. A second pass covers peers that themselves
	// recovered first.
	for pass := 0; pass < 2; pass++ {
		for _, node := range cluster.Nodes {
			if cluster.Net.Crashed(node.Addr()) {
				continue
			}
			if node.Delivered() < int64(itemCount) {
				_ = node.RecoverFromZonePeer(itemCount * 2)
			}
		}
		cluster.RunFor(10 * time.Second)
	}

	got = 0
	var dups, retries, failovers int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		got += node.Delivered()
		st := node.Router().Stats()
		dups += st.Duplicates
		retries += st.RetriesSent
		failovers += st.FailoversTotal
	}
	after := float64(got) / float64(want)

	onOff := "off"
	if retry {
		onOff = "on"
	}
	return []string{
		label,
		fmt.Sprint(k),
		onOff,
		fmtPct(before),
		fmtPct(after),
		fmtI(retries),
		fmtI(failovers),
		fmtI(dups),
	}
}
