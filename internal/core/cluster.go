package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/sim"
	"newswire/internal/trace"
	"newswire/internal/value"
	"newswire/internal/wire"
)

// ClusterConfig describes a simulated NewsWire deployment.
type ClusterConfig struct {
	// N is the number of nodes.
	N int
	// Branching bounds both members per leaf zone and child zones per
	// parent (the paper's "each of these tables is limited to some small
	// size (say, 64-rows)"). Default 64.
	Branching int
	// Link models every network link. Default sim.DefaultWAN.
	Link sim.LinkModel
	// Seed makes the whole run reproducible.
	Seed int64
	// GossipInterval is each node's Tick cadence. Default 2s.
	GossipInterval time.Duration
	// Customize, when set, adjusts each node's Config before creation
	// (the cluster fills Transport/Clock/Rand/Name/ZonePath itself).
	Customize func(i int, cfg *Config)
	// Workers selects the execution mode: 0 runs the original serial
	// event loop; >= 1 runs the deterministic parallel executor with
	// that many workers; -1 sizes the pool to GOMAXPROCS. Both modes
	// produce bit-identical tables for the same seed (see
	// sim/parallel.go for the construction).
	Workers int
	// Trace attaches a per-node trace.Collector to every node. Tracing
	// never touches the engine's RNG or event order, so traced runs
	// produce tables bit-identical to untraced runs, and the collector's
	// canonical span order is identical between serial and parallel
	// execution of the same seed.
	Trace bool
	// VirtualLeaves packs quiescent leaf members into per-zone template
	// rows and delivery bitsets instead of full Node instances (see
	// virtual.go). Only the first MaterializedPerZone members of each
	// leaf zone get real agents; Nodes holds nil for the rest until
	// MaterializeNode is called. Requires VirtualSubjects and assumes
	// the default ModeBloom pub/sub geometry.
	VirtualLeaves bool
	// VirtualSubjects is the subscription set of every member — real
	// members are subscribed during construction, virtual members
	// advertise the matching Bloom filter in their template rows.
	VirtualSubjects []string
	// MaterializedPerZone is how many leading members of each leaf zone
	// are real agents under VirtualLeaves. Default 4: the default
	// aggregation elects 3 representatives, which must be able to act,
	// plus one plain member so delivery latency is sampled at a
	// non-representative too.
	MaterializedPerZone int
}

// Cluster is a set of simulated nodes arranged in a balanced zone tree.
type Cluster struct {
	Eng   *sim.Engine
	Net   *sim.Network
	Nodes []*Node

	cfg     ClusterConfig
	exec    *sim.Executor
	tracer  *trace.Collector
	tickers []*sim.Ticker

	// ownerNode maps a parallel-executor owner index to the node index
	// it drives, or -1 for a virtual-zone sink owner.
	ownerNode []int
	// tickOrder lists owner slots sorted by node index — the commit order
	// of the parallel tick phase. Construction registers owners in index
	// order, but MaterializeNode appends its owner at the end, so without
	// re-sorting a materialized node's tick effects would commit (and
	// consume the engine RNG) after everyone else's instead of at its
	// index position, breaking serial≡parallel. Rebuilt lazily when
	// owners were added.
	tickOrder []int
	// Virtual-leaf bookkeeping (virtual.go); empty without VirtualLeaves.
	vzones      []*virtualZone
	vzoneByPath map[string]*virtualZone
	rounds      int
}

// Tracer returns the cluster's span collector, or nil when ClusterConfig
// Trace was off.
func (c *Cluster) Tracer() *trace.Collector { return c.tracer }

// TraceSpans returns every recorded span in canonical deterministic order
// (nil without tracing).
func (c *Cluster) TraceSpans() []trace.Span {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.Spans()
}

// Parallel reports whether the cluster runs under the parallel executor.
func (c *Cluster) Parallel() bool { return c.exec != nil }

// ZonePathFor computes node i's leaf zone in a balanced tree with the
// given branching: nodes fill leaf zones of up to b members; leaf zones
// fill parents of up to b children; and so on until one root level
// suffices. Paths look like "/z04/z12".
func ZonePathFor(i, n, b int) string {
	if b < 2 {
		b = 2
	}
	// Number of leaf zones and tree depth above them.
	leafZone := i / b
	numLeafZones := (n + b - 1) / b
	// Build the zone index path from the leaf zone upward.
	var indices []int
	zones := numLeafZones
	idx := leafZone
	for zones > 1 {
		indices = append(indices, idx%b)
		idx /= b
		zones = (zones + b - 1) / b
	}
	if len(indices) == 0 {
		indices = []int{0}
	}
	// indices is leaf-first; render root-first.
	path := ""
	for j := len(indices) - 1; j >= 0; j-- {
		path += fmt.Sprintf("/z%02d", indices[j])
	}
	return path
}

// NewCluster builds, bootstraps and returns a simulated cluster. Nodes
// are created with addresses "n0".."n<N-1>" and names "node-<i>".
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: cluster needs at least one node")
	}
	if cfg.Branching <= 0 {
		cfg.Branching = 64
	}
	if cfg.Branching < 2 {
		cfg.Branching = 2 // ZonePathFor's own floor; keep zone math aligned
	}
	if cfg.VirtualLeaves && len(cfg.VirtualSubjects) == 0 {
		return nil, fmt.Errorf("core: VirtualLeaves requires VirtualSubjects")
	}
	if cfg.MaterializedPerZone <= 0 {
		cfg.MaterializedPerZone = 4
	}
	if cfg.Link == (sim.LinkModel{}) {
		cfg.Link = sim.DefaultWAN
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 2 * time.Second
	}
	eng := sim.NewEngine(cfg.Seed)
	net := sim.NewNetwork(eng, cfg.Link)
	c := &Cluster{Eng: eng, Net: net, cfg: cfg}
	if cfg.Workers != 0 {
		c.exec = sim.NewExecutor(net, cfg.Workers)
	}
	if cfg.Trace {
		c.tracer = trace.NewCollector(cfg.N)
	}

	var subsVal, loadVal, virtVal value.Value
	if cfg.VirtualLeaves {
		subsVal = virtualSubsBloom(cfg.VirtualSubjects)
		loadVal = value.Float(1)
		virtVal = value.Bool(true)
		c.vzoneByPath = make(map[string]*virtualZone)
	}
	issued := eng.Now()
	for i := 0; i < cfg.N; i++ {
		if cfg.VirtualLeaves && i%cfg.Branching >= cfg.MaterializedPerZone {
			// Quiescent member: a template row and a sink endpoint, no
			// agent (virtual.go). The zone's first MaterializedPerZone
			// members took the real-node path below, so the first
			// virtual member creates the zone's packed state.
			zone := ZonePathFor(i, cfg.N, cfg.Branching)
			vz := c.vzoneByPath[zone]
			if vz == nil {
				ordinal := i / cfg.Branching
				first := ordinal * cfg.Branching
				size := cfg.Branching
				if first+size > cfg.N {
					size = cfg.N - first
				}
				vz = newVirtualZone(zone, ordinal, first, size, cfg.VirtualSubjects)
				if c.exec != nil {
					// One sink owner per zone serializes the zone's
					// virtual delivery events and buffers their acks,
					// exactly like a real node's owner.
					vz.owner = c.exec.RegisterSink()
					c.ownerNode = append(c.ownerNode, -1)
				}
				c.vzoneByPath[zone] = vz
				c.vzones = append(c.vzones, vz)
			}
			pos := i - vz.firstIdx
			addr := fmt.Sprintf("n%d", i)
			var handle func(*wire.Message)
			ep := net.Attach(addr, func(m *wire.Message) { handle(m) })
			handle = vz.handler(pos, ep)
			if c.exec != nil {
				c.exec.Adopt(ep, vz.owner)
				c.exec.SetShard(ep, vz.ordinal)
			}
			vz.template(pos, fmt.Sprintf("node-%d", i), addr, subsVal, loadVal, virtVal, issued)
			c.Nodes = append(c.Nodes, nil)
			continue
		}
		n, err := c.buildNode(i)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
		if cfg.VirtualLeaves {
			if err := n.Subscribe(cfg.VirtualSubjects...); err != nil {
				return nil, fmt.Errorf("core: node %d: %w", i, err)
			}
		}
	}
	c.bootstrap()
	return c, nil
}

// buildNode assembles the real Node for member i: endpoint, config,
// executor registration, tracing. Shared by the construction loop and
// MaterializeNode so a late-built node is wired identically.
func (c *Cluster) buildNode(i int) (*Node, error) {
	cfg := c.cfg
	addr := fmt.Sprintf("n%d", i)
	var node *Node
	ep := c.Net.Attach(addr, func(m *wire.Message) {
		node.HandleMessage(m)
	})
	nodeCfg := Config{
		Name:           fmt.Sprintf("node-%d", i),
		ZonePath:       ZonePathFor(i, cfg.N, cfg.Branching),
		Transport:      ep,
		Clock:          c.Eng.Clock(),
		Rand:           rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + 1)),
		GossipInterval: cfg.GossipInterval,
		// Retransmit deadlines run on the event engine so reliable
		// forwarding (Config.AckTimeout) stays deterministic.
		After: c.Eng.After,
	}
	if c.exec != nil {
		// Parallel mode: the node reads time through its owned clock
		// and registers timers through the executor, so its events
		// can run inside parallel windows yet commit in serial order.
		// Commit effects replay sharded by leaf zone, so same-zone
		// endpoints share a shard and distinct zones replay in
		// parallel.
		nodeCfg.Clock = c.exec.Register(ep)
		nodeCfg.After = c.exec.AfterFunc(ep)
		c.exec.SetShard(ep, i/cfg.Branching)
		c.ownerNode = append(c.ownerNode, i)
	}
	if c.tracer != nil {
		// Per-node buffer: one writer at a time under both executors
		// (a node's events never run on two workers at once), and the
		// span timestamps come from nodeCfg.Clock — virtual time, or
		// the owned clock's event time inside parallel windows.
		nodeCfg.Tracer = c.tracer.Node(i)
	}
	if cfg.Customize != nil {
		cfg.Customize(i, &nodeCfg)
	}
	n, err := NewNode(nodeCfg)
	if err != nil {
		return nil, fmt.Errorf("core: node %d: %w", i, err)
	}
	if c.exec != nil && nodeCfg.AckTimeout > 0 && nodeCfg.AckTimeout < c.exec.Lookahead() {
		// A retransmit deadline shorter than the conservative
		// lookahead window would fire inside an executed window and
		// break serial equivalence (sim/parallel.go).
		return nil, fmt.Errorf("core: node %d: AckTimeout %v below link lookahead %v; use Workers: 0",
			i, nodeCfg.AckTimeout, c.exec.Lookahead())
	}
	node = n
	return n, nil
}

// bootstrap introduces nodes to each other without O(N²) work: members of
// a leaf zone exchange leaf rows; at each higher level, one delegate per
// zone contributes its aggregate row to every node sharing that table.
func (c *Cluster) bootstrap() {
	// Group nodes by leaf zone. Iterate zones in sorted order everywhere
	// below: map order would make the first-seen dedup (and hence the
	// seeded tables) differ between runs with the same seed.
	byLeaf := make(map[string][]*Node)
	for _, n := range c.Nodes {
		if n == nil {
			continue // virtual leaf; its template row is merged below
		}
		byLeaf[n.ZonePath()] = append(byLeaf[n.ZonePath()], n)
	}
	leafZones := make([]string, 0, len(byLeaf))
	for z := range byLeaf {
		leafZones = append(leafZones, z)
	}
	sort.Strings(leafZones)
	// Leaf-level introductions: every real member learns its real
	// peers' own rows plus the zone's virtual templates.
	for _, z := range leafZones {
		members := byLeaf[z]
		rows := make([]wire.RowUpdate, 0, len(members))
		for _, m := range members {
			rows = append(rows, m.agent.OwnRowUpdate())
		}
		if vz := c.vzoneByPath[z]; vz != nil {
			rows = append(rows, vz.templateUpdates()...)
		}
		for _, m := range members {
			m.agent.MergeRows(rows)
		}
	}
	// Higher levels: collect one delegate's chain rows per leaf zone,
	// bucket them by table zone, and hand every node the rows of the
	// tables it replicates. Delegates of sibling leaf zones produce
	// same-named aggregate rows with identical (construction-time) issue
	// stamps but different partial contents; keep exactly one per
	// (zone, name) — these are bootstrap hints, and the first gossip
	// rounds replace them with converged aggregates. Without the dedup a
	// large cluster pays hundreds of millions of encoded tie-breaks.
	rowsByZone := make(map[string]map[string]wire.RowUpdate)
	for _, z := range leafZones {
		delegate := byLeaf[z][0]
		for _, u := range delegate.agent.ChainRowUpdates() {
			if u.Zone == delegate.ZonePath() {
				continue // leaf rows were handled above
			}
			byName := rowsByZone[u.Zone]
			if byName == nil {
				byName = make(map[string]wire.RowUpdate)
				rowsByZone[u.Zone] = byName
			}
			if _, seen := byName[u.Name]; !seen {
				byName[u.Name] = u
			}
		}
	}
	for _, n := range c.Nodes {
		if n == nil {
			continue
		}
		var seeds []wire.RowUpdate
		for _, zone := range n.agent.Chain() {
			byName := rowsByZone[zone]
			names := make([]string, 0, len(byName))
			for name := range byName {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				seeds = append(seeds, byName[name])
			}
		}
		n.agent.MergeRows(seeds)
	}
}

// StartTicking schedules every node's Tick on the engine with ±25%
// jitter, as a live deployment would behave.
func (c *Cluster) StartTicking() {
	for _, n := range c.Nodes {
		if n == nil {
			continue
		}
		n := n
		t := c.Eng.Every(c.cfg.GossipInterval, 0.25, n.Tick)
		c.tickers = append(c.tickers, t)
	}
}

// StopTicking cancels the tickers started by StartTicking.
func (c *Cluster) StopTicking() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// RunRounds ticks every node once per gossip interval for r rounds,
// advancing virtual time between rounds. Use either this or StartTicking,
// not both. Under the parallel executor the tick phase fans out across
// the worker pool and commits each node's sends in node-index order —
// the exact order of the serial loop.
func (c *Cluster) RunRounds(r int) {
	for i := 0; i < r; i++ {
		if c.exec != nil {
			c.exec.RunOwnersOrdered(c.tickOrderSlice(), func(k int) {
				ni := c.ownerNode[k]
				if ni < 0 {
					return // virtual-zone sink owner: nothing to tick
				}
				n := c.Nodes[ni]
				if !c.Net.Crashed(n.Addr()) {
					n.Tick()
				}
			})
		} else {
			for _, n := range c.Nodes {
				if n == nil {
					continue
				}
				if !c.Net.Crashed(n.Addr()) {
					n.Tick()
				}
			}
		}
		c.RunFor(c.cfg.GossipInterval)
		// Seal the row arena between table generations so slabs holding
		// mostly-expired encodings are released (wire/slab.go). Counter
		// driven, so it is identical across serial and parallel runs.
		c.rounds++
		if c.rounds%32 == 0 {
			wire.RowArena().SealEpoch()
		}
	}
}

// tickOrderSlice returns the owner slots sorted by the node index they
// drive (sink owners first — they buffer no tick effects), which is the
// serial tick loop's order. The sort is stable, so the order is a pure
// function of registration history and identical across runs.
func (c *Cluster) tickOrderSlice() []int {
	if len(c.tickOrder) != len(c.ownerNode) {
		c.tickOrder = c.tickOrder[:0]
		for k := range c.ownerNode {
			c.tickOrder = append(c.tickOrder, k)
		}
		sort.SliceStable(c.tickOrder, func(a, b int) bool {
			return c.ownerNode[c.tickOrder[a]] < c.ownerNode[c.tickOrder[b]]
		})
	}
	return c.tickOrder
}

// RunFor advances virtual time (delivering messages and firing tickers).
func (c *Cluster) RunFor(d time.Duration) {
	if c.exec != nil {
		c.exec.RunFor(d)
		return
	}
	c.Eng.RunFor(d)
}

// NodesInZone returns the nodes whose leaf zone lies under zone.
func (c *Cluster) NodesInZone(zone string) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n == nil {
			continue
		}
		if astrolabe.ZoneContains(zone, n.ZonePath()) {
			out = append(out, n)
		}
	}
	return out
}
