package astrolabe

import (
	"testing"

	"newswire/internal/metrics"
	"newswire/internal/value"
)

// TestHealthAggregation drives every sys$health merge operator through a
// real two-zone cluster and checks any node's root table carries the
// correct per-zone rollups.
func TestHealthAggregation(t *testing.T) {
	zones := []string{"/usa/ny", "/usa/ny", "/usa/sf"}
	c := newTestCluster(t, zones, func(i int, cfg *Config) {
		cfg.PrefixRules = append(cfg.PrefixRules, HealthRules()...)
	})

	sketches := make([]*metrics.Sketch, len(zones))
	for i, a := range c.agents {
		s := &metrics.Sketch{}
		for j := 0; j <= i; j++ {
			s.Observe(0.001 * float64(i+1)) // 1ms, 2ms, 3ms per node
		}
		sketches[i] = s
		a.SetAttrs(value.Map{
			HealthSumPrefix + "drops":   value.Int(int64(i + 1)),
			HealthMaxPrefix + "queue":   value.Int(int64(10 * (i + 1))),
			HealthMinPrefix + "refresh": value.Int(int64(100 - i)),
			HealthSketchPrefix + "lat":  value.Bytes(s.Encode()),
		})
	}
	c.runRounds(10)

	for i, a := range c.agents {
		usa, ok := a.Row("/", "usa")
		if !ok {
			t.Fatalf("agent %d missing /usa root row", i)
		}
		if n, _ := usa.Attrs[HealthSumPrefix+"drops"].AsInt(); n != 1+2+3 {
			t.Errorf("agent %d usa drops sum = %v, want 6", i, usa.Attrs[HealthSumPrefix+"drops"])
		}
		if n, _ := usa.Attrs[HealthMaxPrefix+"queue"].AsInt(); n != 30 {
			t.Errorf("agent %d usa queue max = %v, want 30", i, usa.Attrs[HealthMaxPrefix+"queue"])
		}
		if n, _ := usa.Attrs[HealthMinPrefix+"refresh"].AsInt(); n != 98 {
			t.Errorf("agent %d usa refresh min = %v, want 98", i, usa.Attrs[HealthMinPrefix+"refresh"])
		}
		raw, ok := usa.Attrs[HealthSketchPrefix+"lat"].RawBytes()
		if !ok {
			t.Fatalf("agent %d usa latency sketch missing", i)
		}
		merged, err := metrics.DecodeSketch(raw)
		if err != nil {
			t.Fatalf("agent %d merged sketch undecodable: %v", i, err)
		}
		var want uint64
		for _, s := range sketches {
			want += s.Count()
		}
		if merged.Count() != want {
			t.Errorf("agent %d merged sketch count = %d, want %d", i, merged.Count(), want)
		}
		// The intermediate /usa/ny zone row must aggregate only its own
		// members (nodes 0 and 1).
		ny, ok := a.Row("/usa", "ny")
		if !ok {
			t.Fatalf("agent %d missing /usa/ny row", i)
		}
		if n, _ := ny.Attrs[HealthSumPrefix+"drops"].AsInt(); n != 1+2 {
			t.Errorf("agent %d ny drops sum = %v, want 3", i, ny.Attrs[HealthSumPrefix+"drops"])
		}
	}
}

// TestFingerprintExcludesHealth: two clusters that converge to the same
// delivery state but different health telemetry must fingerprint
// identically — the chaos clean-twin oracle depends on it. A non-health
// divergence must still be caught.
func TestFingerprintExcludesHealth(t *testing.T) {
	build := func(drops int64, load float64) *Agent {
		c := newTestCluster(t, []string{"/z", "/z"}, func(i int, cfg *Config) {
			cfg.PrefixRules = append(cfg.PrefixRules, HealthRules()...)
		})
		c.agents[0].SetAttrs(value.Map{
			HealthSumPrefix + "drops": value.Int(drops),
			"load":                    value.Float(load),
		})
		c.runRounds(8)
		return c.agents[0]
	}

	base := build(1, 0.25)
	healthOnly := build(999, 0.25)
	realDiff := build(1, 0.75)

	if base.FingerprintTables() != healthOnly.FingerprintTables() {
		t.Fatal("health-attr divergence changed the table fingerprint")
	}
	if base.FingerprintTables() == realDiff.FingerprintTables() {
		t.Fatal("non-health divergence not reflected in the fingerprint")
	}
}
