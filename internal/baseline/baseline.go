// Package baseline implements the content-delivery models NewsWire is
// compared against (paper §1): the centralized pull-model web site (full
// page pulls, RSS summary pulls, and delta-encoded pulls), with a finite
// request-serving capacity that flash crowds can saturate; and the direct
// one-to-many unicast push of "current push solutions" (§2), where the
// publisher ships every item to every consumer itself.
package baseline

import (
	"fmt"
	"sync"

	"newswire/internal/flow"
	"newswire/internal/news"
	"newswire/internal/vtime"
)

// FetchMode is how a pull reader retrieves the site.
type FetchMode int

// Pull fetch modes (§1's three access patterns).
const (
	// FetchFull downloads the whole front page every visit.
	FetchFull FetchMode = iota + 1
	// FetchRSS downloads the RSS summary, then the full text of items
	// the reader has not seen.
	FetchRSS
	// FetchDelta uses if-modified-since: the server returns only items
	// newer than the reader's previous visit.
	FetchDelta
)

// String names the fetch mode.
func (m FetchMode) String() string {
	switch m {
	case FetchFull:
		return "full"
	case FetchRSS:
		return "rss"
	case FetchDelta:
		return "delta"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// rssEntryBytes approximates one RSS channel entry (headline + URL).
const rssEntryBytes = 120

// PullStats aggregates server-side counters.
type PullStats struct {
	Requests  int64
	Served    int64
	Rejected  int64
	BytesOut  int64
	Published int64
}

// PullServer models a centralized news site: a front page of the most
// recent items and a bounded request-serving capacity.
type PullServer struct {
	clock    vtime.Clock
	capacity *flow.TokenBucket // requests/second the site can serve

	mu    sync.Mutex
	front []*news.Item // newest first
	max   int
	stats PullStats
}

// NewPullServer creates a site whose front page shows frontSize items and
// that can serve capacityRPS requests per second (0 = unlimited).
func NewPullServer(clock vtime.Clock, frontSize int, capacityRPS float64) (*PullServer, error) {
	if clock == nil {
		return nil, fmt.Errorf("baseline: clock required")
	}
	if frontSize <= 0 {
		return nil, fmt.Errorf("baseline: front page size must be positive")
	}
	s := &PullServer{clock: clock, max: frontSize}
	if capacityRPS > 0 {
		bucket, err := flow.NewTokenBucket(clock, capacityRPS, capacityRPS)
		if err != nil {
			return nil, err
		}
		s.capacity = bucket
	}
	return s, nil
}

// Publish places a new item (or revision) at the top of the front page.
// A revision replaces its older revision in place.
func (s *PullServer) Publish(it *news.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Published++
	for i, existing := range s.front {
		if existing.SeriesKey() == it.SeriesKey() {
			// Revision: move to top.
			copy(s.front[1:i+1], s.front[:i])
			s.front[0] = it
			return
		}
	}
	s.front = append([]*news.Item{it}, s.front...)
	if len(s.front) > s.max {
		s.front = s.front[:s.max]
	}
}

// FrontPage returns the current front page, newest first.
func (s *PullServer) FrontPage() []*news.Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*news.Item, len(s.front))
	copy(out, s.front)
	return out
}

// Stats returns a copy of the server counters.
func (s *PullServer) Stats() PullStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reader tracks one pull consumer's state across visits.
type Reader struct {
	seen      map[string]bool
	lastVisit int64 // unix nanos of previous successful visit

	// TotalBytes and RedundantBytes accumulate across visits: the
	// redundancy fraction of E2 is Redundant/Total.
	TotalBytes     int64
	RedundantBytes int64
	Visits         int64
	Failures       int64
}

// NewReader returns a reader who has seen nothing.
func NewReader() *Reader {
	return &Reader{seen: make(map[string]bool)}
}

// Visit performs one pull in the given mode. ok is false when the server
// rejected the request (over capacity) — the §1 overload failure mode.
func (s *PullServer) Visit(r *Reader, mode FetchMode) (ok bool) {
	s.mu.Lock()
	s.stats.Requests++
	admitted := s.capacity == nil || s.capacity.Allow(1)
	if !admitted {
		s.stats.Rejected++
		s.mu.Unlock()
		r.Failures++
		return false
	}
	s.stats.Served++
	page := make([]*news.Item, len(s.front))
	copy(page, s.front)
	s.mu.Unlock()

	r.Visits++
	now := s.clock.Now().UnixNano()
	switch mode {
	case FetchRSS:
		// The summary itself is always transferred (and is redundant for
		// already-seen entries); unseen items are fetched in full.
		for _, it := range page {
			r.TotalBytes += rssEntryBytes
			if r.seen[it.Key()] {
				r.RedundantBytes += rssEntryBytes
				continue
			}
			// RSS fetch of the full article is a separate request.
			s.mu.Lock()
			s.stats.Requests++
			fetchOK := s.capacity == nil || s.capacity.Allow(1)
			if fetchOK {
				s.stats.Served++
				s.stats.BytesOut += int64(it.Size())
			} else {
				s.stats.Rejected++
			}
			s.mu.Unlock()
			if fetchOK {
				r.TotalBytes += int64(it.Size())
				r.seen[it.Key()] = true
			}
		}
		s.addBytes(int64(len(page) * rssEntryBytes))

	case FetchDelta:
		for _, it := range page {
			if it.Published.UnixNano() <= r.lastVisit {
				continue // not transferred at all
			}
			size := int64(it.Size())
			r.TotalBytes += size
			s.addBytes(size)
			if r.seen[it.Key()] {
				r.RedundantBytes += size
			}
			r.seen[it.Key()] = true
		}

	default: // FetchFull
		for _, it := range page {
			size := int64(it.Size())
			r.TotalBytes += size
			s.addBytes(size)
			if r.seen[it.Key()] {
				r.RedundantBytes += size
			}
			r.seen[it.Key()] = true
		}
	}
	r.lastVisit = now
	return true
}

func (s *PullServer) addBytes(n int64) {
	s.mu.Lock()
	s.stats.BytesOut += n
	s.mu.Unlock()
}

// RedundancyFraction returns the fraction of bytes the reader received
// redundantly, the paper's ~70% headline number for 4-visit readers.
func (r *Reader) RedundancyFraction() float64 {
	if r.TotalBytes == 0 {
		return 0
	}
	return float64(r.RedundantBytes) / float64(r.TotalBytes)
}

// DirectPushStats counts the publisher-side cost of one-to-many unicast.
type DirectPushStats struct {
	ItemsPublished int64
	MsgsSent       int64
	BytesSent      int64
}

// DirectPush models the proprietary push services of §2: the publisher
// delivers personalized content directly to each consumer, so its egress
// grows linearly with the audience. Subscribers are registered with their
// subject interests; only matching subscribers receive an item (the
// publisher does the filtering itself, also at its own cost).
type DirectPush struct {
	mu          sync.Mutex
	subscribers map[string][]string // subscriber -> subjects
	stats       DirectPushStats
	// FilterOps counts per-item subscription evaluations, the publisher
	// CPU cost E4 reports alongside bandwidth.
	FilterOps int64
}

// NewDirectPush returns an empty registry.
func NewDirectPush() *DirectPush {
	return &DirectPush{subscribers: make(map[string][]string)}
}

// Subscribe registers a consumer and its subjects.
func (d *DirectPush) Subscribe(id string, subjects []string) {
	d.mu.Lock()
	cp := make([]string, len(subjects))
	copy(cp, subjects)
	d.subscribers[id] = cp
	d.mu.Unlock()
}

// Publish sends the item to every matching subscriber and returns how
// many copies left the publisher.
func (d *DirectPush) Publish(it *news.Item) int {
	size := int64(it.Size())
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.ItemsPublished++
	sent := 0
	for _, subjects := range d.subscribers {
		d.FilterOps++
		if it.MatchesAny(subjects) {
			d.stats.MsgsSent++
			d.stats.BytesSent += size
			sent++
		}
	}
	return sent
}

// Stats returns a copy of the counters.
func (d *DirectPush) Stats() DirectPushStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Subscribers returns the registered consumer count.
func (d *DirectPush) Subscribers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.subscribers)
}
