package multicast

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"newswire/internal/sim"
	"newswire/internal/wire"
)

// queueHarness records messages the queue transmits, in order.
type queueHarness struct {
	eng  *sim.Engine
	net  *sim.Network
	sent []string // "dest:item"
}

func newQueueHarness(t *testing.T, strategy Strategy, capacity int) (*queueHarness, *ForwardQueue) {
	t.Helper()
	eng := sim.NewEngine(3)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	h := &queueHarness{eng: eng, net: net}
	ep := net.Attach("src", nil)
	for _, dest := range []string{"d1", "d2", "d3"} {
		dest := dest
		net.Attach(dest, func(m *wire.Message) {
			h.sent = append(h.sent, dest+":"+m.Multicast.Envelope.ItemID)
		})
	}
	q, err := NewForwardQueue(ep, strategy, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return h, q
}

func mcMsg(id string, urgency int) *wire.Message {
	return &wire.Message{
		Kind: wire.KindMulticast,
		Multicast: &wire.Multicast{
			TargetZone: "/x",
			Envelope:   wire.ItemEnvelope{Publisher: "p", ItemID: id, Urgency: urgency},
		},
	}
}

func TestNewForwardQueueValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("x", nil)
	if _, err := NewForwardQueue(ep, Strategy(99), 10); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewForwardQueue(ep, FIFO, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if FIFO.String() != "fifo" || WeightedRoundRobin.String() != "wrr" ||
		UrgencyFirst.String() != "urgency" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(42).String() != "strategy(42)" {
		t.Fatal("unknown strategy name wrong")
	}
}

func TestFIFOOrder(t *testing.T) {
	h, q := newQueueHarness(t, FIFO, 100)
	q.Enqueue("d2", mcMsg("a", 8))
	q.Enqueue("d1", mcMsg("b", 1))
	q.Enqueue("d2", mcMsg("c", 8))
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Drain(10)
	h.eng.RunUntilIdle(0)
	want := []string{"d2:a", "d1:b", "d2:c"}
	if len(h.sent) != 3 {
		t.Fatalf("sent = %v", h.sent)
	}
	for i := range want {
		if h.sent[i] != want[i] {
			t.Fatalf("FIFO order = %v, want %v", h.sent, want)
		}
	}
}

func TestUrgencyFirstOrder(t *testing.T) {
	h, q := newQueueHarness(t, UrgencyFirst, 100)
	q.Enqueue("d1", mcMsg("routine", 8))
	q.Enqueue("d2", mcMsg("flash", 1))
	q.Enqueue("d3", mcMsg("mid", 4))
	q.Drain(10)
	h.eng.RunUntilIdle(0)
	want := []string{"d2:flash", "d3:mid", "d1:routine"}
	for i := range want {
		if h.sent[i] != want[i] {
			t.Fatalf("urgency order = %v, want %v", h.sent, want)
		}
	}
}

func TestUrgencyInvalidTreatedAsRoutine(t *testing.T) {
	h, q := newQueueHarness(t, UrgencyFirst, 100)
	q.Enqueue("d1", mcMsg("zero-urgency", 0)) // invalid -> 8
	q.Enqueue("d2", mcMsg("urgent", 2))
	q.Drain(10)
	h.eng.RunUntilIdle(0)
	if h.sent[0] != "d2:urgent" {
		t.Fatalf("order = %v", h.sent)
	}
}

func TestWRRFairness(t *testing.T) {
	h, q := newQueueHarness(t, WeightedRoundRobin, 100)
	// Flood d1, trickle d2: WRR must interleave, not starve d2.
	for i := 0; i < 6; i++ {
		q.Enqueue("d1", mcMsg("bulk", 8))
	}
	q.Enqueue("d2", mcMsg("small", 8))
	q.Drain(3)
	h.eng.RunUntilIdle(0)
	foundSmall := false
	for _, s := range h.sent {
		if s == "d2:small" {
			foundSmall = true
		}
	}
	if !foundSmall {
		t.Fatalf("WRR starved d2 in first 3 sends: %v", h.sent)
	}
}

func TestWRRWeights(t *testing.T) {
	h, q := newQueueHarness(t, WeightedRoundRobin, 100)
	q.SetWeight("d1", 3)
	q.SetWeight("d2", 1)
	for i := 0; i < 9; i++ {
		q.Enqueue("d1", mcMsg("h", 8))
		if i < 3 {
			q.Enqueue("d2", mcMsg("l", 8))
		}
	}
	q.Drain(8)
	h.eng.RunUntilIdle(0)
	d1, d2 := 0, 0
	for _, s := range h.sent {
		if s[:2] == "d1" {
			d1++
		} else {
			d2++
		}
	}
	if d1 < 2*d2 {
		t.Fatalf("weighting ineffective: d1=%d d2=%d (%v)", d1, d2, h.sent)
	}
	if d2 == 0 {
		t.Fatal("low-weight destination starved entirely")
	}
}

func TestQueueCapacityDrops(t *testing.T) {
	_, q := newQueueHarness(t, FIFO, 2)
	q.Enqueue("d1", mcMsg("a", 8))
	q.Enqueue("d1", mcMsg("b", 8))
	q.Enqueue("d1", mcMsg("c", 8)) // over capacity
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	_, dropped := q.Counters()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestDrainEmptyQueue(t *testing.T) {
	_, q := newQueueHarness(t, WeightedRoundRobin, 10)
	if n := q.Drain(5); n != 0 {
		t.Fatalf("Drain on empty = %d", n)
	}
}

func TestDrainPartial(t *testing.T) {
	h, q := newQueueHarness(t, FIFO, 100)
	for i := 0; i < 5; i++ {
		q.Enqueue("d1", mcMsg("x", 8))
	}
	if n := q.Drain(2); n != 2 {
		t.Fatalf("Drain(2) = %d", n)
	}
	if q.Len() != 3 {
		t.Fatalf("Len after partial drain = %d", q.Len())
	}
	sent, _ := q.Counters()
	if sent != 2 {
		t.Fatalf("sent counter = %d", sent)
	}
	h.eng.RunUntilIdle(0)
}

func TestSenderAdapter(t *testing.T) {
	h, q := newQueueHarness(t, FIFO, 10)
	send := q.Sender()
	if err := send("d1", mcMsg("via-sender", 8)); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 {
		t.Fatal("Sender did not enqueue")
	}
	q.Drain(1)
	h.eng.RunUntilIdle(0)
	if len(h.sent) != 1 || h.sent[0] != "d1:via-sender" {
		t.Fatalf("sent = %v", h.sent)
	}
}

// Property: every enqueued message (within capacity) is eventually
// drained exactly once, under every strategy.
func TestQuickQueueConservation(t *testing.T) {
	strategies := []Strategy{FIFO, WeightedRoundRobin, UrgencyFirst}
	f := func(destsRaw []uint8, urgRaw []uint8) bool {
		for _, strategy := range strategies {
			h, q := newQuickHarness(strategy)
			n := len(destsRaw)
			if n > 50 {
				n = 50
			}
			for i := 0; i < n; i++ {
				dest := []string{"d1", "d2", "d3"}[destsRaw[i]%3]
				urg := 8
				if i < len(urgRaw) {
					urg = int(urgRaw[i]%8) + 1
				}
				if err := q.Enqueue(dest, mcMsg(fmt.Sprintf("m%d", i), urg)); err != nil {
					return false
				}
			}
			total := 0
			for {
				drained := q.Drain(7)
				total += drained
				if drained == 0 {
					break
				}
			}
			h.eng.RunUntilIdle(0)
			if total != n || q.Len() != 0 || len(h.sent) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newQuickHarness is newQueueHarness without a testing.T, for
// testing/quick property functions.
func newQuickHarness(strategy Strategy) (*queueHarness, *ForwardQueue) {
	eng := sim.NewEngine(11)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	h := &queueHarness{eng: eng, net: net}
	ep := net.Attach("src", nil)
	for _, dest := range []string{"d1", "d2", "d3"} {
		dest := dest
		net.Attach(dest, func(m *wire.Message) {
			h.sent = append(h.sent, dest+":"+m.Multicast.Envelope.ItemID)
		})
	}
	q, _ := NewForwardQueue(ep, strategy, 1000)
	return h, q
}

// TestRetransmitQueueConcurrentAcks hammers the retransmit table from
// concurrent acker and deadline goroutines (the shapes a real TCP
// transport produces) and checks every forward resolves exactly once.
// Run with -race.
func TestRetransmitQueueConcurrentAcks(t *testing.T) {
	const n = 500
	q := newRetransmitQueue(n)

	seqs := make([]uint64, 0, n)
	keys := make(map[uint64]string, n)
	for i := 0; i < n; i++ {
		env := wire.ItemEnvelope{Publisher: "p", ItemID: fmt.Sprintf("it-%d", i)}
		p := &pendingForward{
			addr:  "dst",
			zone:  "/z",
			msg:   wire.Multicast{TargetZone: "/z", Envelope: env},
			tried: map[string]bool{"dst": true},
		}
		seq, ok := q.register(p)
		if !ok {
			t.Fatalf("register %d refused below the limit", i)
		}
		if p.msg.AckSeq != seq {
			t.Fatalf("registered forward carries AckSeq %d, want %d", p.msg.AckSeq, seq)
		}
		seqs = append(seqs, seq)
		keys[seq] = env.Key()
	}

	// Half the seqs race an acker against a deadline-taker; each entry
	// must resolve on exactly one side.
	var ackWins, takeWins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, seq := range seqs {
		seq := seq
		wg.Add(2)
		go func() {
			defer wg.Done()
			if q.ack(seq, keys[seq], "n1") != nil {
				mu.Lock()
				ackWins++
				mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			if q.take(seq) != nil {
				mu.Lock()
				takeWins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if ackWins+takeWins != n {
		t.Fatalf("resolved %d+%d times, want exactly %d", ackWins, takeWins, n)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d entries", q.Len())
	}
}

// TestRetransmitQueueAckValidation covers the guards: wrong keys, stale
// seqs, the capacity limit, and seq stability across reinsert.
func TestRetransmitQueueAckValidation(t *testing.T) {
	q := newRetransmitQueue(2)
	env := wire.ItemEnvelope{Publisher: "p", ItemID: "a"}
	p1 := &pendingForward{msg: wire.Multicast{Envelope: env}, tried: map[string]bool{}}
	seq, ok := q.register(p1)
	if !ok {
		t.Fatal("register refused with space available")
	}
	if q.ack(seq, "someone/else#0", "n1") != nil {
		t.Fatal("ack with mismatched key resolved the entry")
	}
	if q.ack(seq+99, env.Key(), "n1") != nil {
		t.Fatal("ack for unknown seq resolved an entry")
	}

	// Deadline path: take, reinsert, then a late ack for the original
	// seq still resolves it (the seq is stable across retries).
	taken := q.take(seq)
	if taken == nil {
		t.Fatal("take failed for a pending entry")
	}
	q.reinsert(taken)
	if q.ack(seq, env.Key(), "n1") == nil {
		t.Fatal("ack after reinsert failed")
	}

	// Capacity: the third concurrent registration degrades.
	q2 := newRetransmitQueue(2)
	for i := 0; i < 2; i++ {
		if _, ok := q2.register(&pendingForward{msg: wire.Multicast{Envelope: env}}); !ok {
			t.Fatalf("register %d refused below the limit", i)
		}
	}
	if _, ok := q2.register(&pendingForward{msg: wire.Multicast{Envelope: env}}); ok {
		t.Fatal("register above the limit accepted")
	}
}
