// Package trace implements per-item delivery tracing: lightweight span
// records keyed by an item envelope's unique publisher/ID/revision key,
// emitted by the multicast router, the node core and the message cache as
// an item travels hop by hop through the zone tree. A trace explains the
// quantities the experiment tables only aggregate — which hop made a
// delivery the p99 outlier, which forwarder a retry failed over from,
// where a duplicate was suppressed, which peer's cache served a recovery.
//
// Recording is opt-in per component through the Recorder interface; a nil
// recorder costs one pointer comparison on each would-be span, so the
// disabled path adds no allocation and no measurable time to the hot
// paths (BenchmarkGossipRound guards this in CI).
//
// Two recorders cover the two deployment modes:
//
//   - Collector buffers spans per simulated node and merges them in a
//     canonical deterministic order. It is safe under the parallel
//     executor's compute/commit phases because each node's events are
//     single-threaded within a window, so every buffer has exactly one
//     writer at a time; the merge order depends only on span timestamps
//     (virtual time) and node indices, never on scheduling.
//   - Ring is a bounded mutex-protected ring buffer for live nodes:
//     constant memory, newest spans win, safe for concurrent transport
//     goroutines.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies a span.
type Kind uint8

// Span kinds, in rough lifecycle order of an item.
const (
	// KindPublish marks an item's injection at its publisher.
	KindPublish Kind = iota + 1
	// KindForward is one outbound multicast transmission toward a zone.
	KindForward
	// KindDeliver is a local application delivery at a leaf.
	KindDeliver
	// KindAck records an acknowledgment resolving a reliable forward.
	KindAck
	// KindRetry is a retransmission after an ack deadline expired.
	KindRetry
	// KindFailover is a retry that switched to an alternate representative.
	KindFailover
	// KindDedupDrop is a duplicate suppressed by the forwarding log, the
	// delivery log, or the message cache.
	KindDedupDrop
	// KindCacheServe is a cache answering a peer's state-transfer request.
	KindCacheServe
	// KindGossipCarry is an item recovered through the anti-entropy /
	// state-transfer path rather than the multicast tree.
	KindGossipCarry
	// KindDeliveryFail is a reliable forward abandoned after MaxAttempts.
	KindDeliveryFail
)

var kindNames = [...]string{
	KindPublish:      "publish",
	KindForward:      "forward",
	KindDeliver:      "deliver",
	KindAck:          "ack",
	KindRetry:        "retry",
	KindFailover:     "failover",
	KindDedupDrop:    "dedup-drop",
	KindCacheServe:   "cache-serve",
	KindGossipCarry:  "gossip-carry",
	KindDeliveryFail: "delivery-fail",
}

// String returns the kind's wire/display name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its display name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a display name back into a Kind.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown span kind %q", s)
}

// Span is one recorded event in an item's delivery. Node is the recording
// node's transport address; To names the far side for forwards, acks and
// cache serves. At is the recording node's clock — virtual time in
// simulation, wall time live.
type Span struct {
	Kind    Kind      `json:"kind"`
	Key     string    `json:"key,omitempty"` // item envelope key
	TraceID uint64    `json:"trace,omitempty"`
	Node    string    `json:"node"`
	Zone    string    `json:"zone,omitempty"`
	To      string    `json:"to,omitempty"`
	Hop     int       `json:"hop,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	At      time.Time `json:"at"`
	Note    string    `json:"note,omitempty"`
}

// DeriveTraceID returns the deterministic trace identifier for an item
// envelope key: the FNV-64a hash of the key, never zero. Deriving the ID
// from the key — rather than minting randomness at publish time — keeps
// traced and untraced runs bit-identical, and lets any process recompute
// the ID from the envelope alone, so spans recorded by different
// newswired processes join into one trace without coordination.
func DeriveTraceID(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// ByTrace returns the spans carrying trace id, preserving input order.
// Feeding it the merged /trace.json output of several processes yields
// the item's joined cross-process trace.
func ByTrace(spans []Span, id uint64) []Span {
	var out []Span
	for i := range spans {
		if spans[i].TraceID == id {
			out = append(out, spans[i])
		}
	}
	return out
}

// Recorder receives spans. Implementations must tolerate concurrent calls
// when used outside the simulator's single-writer-per-node discipline.
// Components hold a Recorder field and skip emission entirely when it is
// nil; that nil check is the whole cost of disabled tracing.
type Recorder interface {
	Record(s Span)
}

// Collector is the deterministic in-memory recorder for simulated
// clusters. Each node records through its own handle into its own buffer;
// the simulator guarantees one writer per buffer at a time (serially, or
// within the parallel executor's windows where a node's events never run
// on two workers at once), so appends need no lock. Spans() merges the
// buffers into a canonical order that is bit-identical between serial and
// parallel execution of the same seed.
type Collector struct {
	bufs [][]Span
}

// NewCollector returns a collector with n per-node buffers.
func NewCollector(n int) *Collector {
	return &Collector{bufs: make([][]Span, n)}
}

// Node returns node i's recording handle.
func (c *Collector) Node(i int) Recorder { return nodeRecorder{c: c, i: i} }

type nodeRecorder struct {
	c *Collector
	i int
}

func (r nodeRecorder) Record(s Span) {
	r.c.bufs[r.i] = append(r.c.bufs[r.i], s)
}

// Len returns the total number of recorded spans.
func (c *Collector) Len() int {
	n := 0
	for _, b := range c.bufs {
		n += len(b)
	}
	return n
}

// Spans merges every node's buffer into canonical order: ascending
// timestamp, ties broken by node index, intra-node order preserved. The
// result depends only on what each node recorded and when — both
// invariant between serial and parallel executor runs — never on worker
// scheduling.
func (c *Collector) Spans() []Span {
	type tagged struct {
		node int
		span *Span
	}
	all := make([]tagged, 0, c.Len())
	for i := range c.bufs {
		for j := range c.bufs[i] {
			all = append(all, tagged{node: i, span: &c.bufs[i][j]})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		ta, tb := all[a].span.At, all[b].span.At
		if !ta.Equal(tb) {
			return ta.Before(tb)
		}
		return all[a].node < all[b].node
	})
	out := make([]Span, len(all))
	for i, t := range all {
		out[i] = *t.span
	}
	return out
}

// Ring is the bounded recorder for live nodes: a fixed-capacity ring
// buffer where the newest spans overwrite the oldest. Safe for concurrent
// use from transport goroutines.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total int64
}

// NewRing returns a ring holding up to cap spans (<= 0 selects 4096).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = 4096
	}
	return &Ring{buf: make([]Span, 0, cap)}
}

// Record implements Recorder.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Spans returns a copy of the retained spans, oldest first.
func (r *Ring) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recorded returns the total number of spans ever recorded, including
// those the ring has since overwritten.
func (r *Ring) Recorded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Fingerprint digests a span slice (order-sensitively); two runs with
// equal fingerprints recorded identical span sequences. The serial-vs-
// parallel equality gates compare Collector.Spans() fingerprints.
func Fingerprint(spans []Span) string {
	h := sha256.New()
	for i := range spans {
		s := &spans[i]
		fmt.Fprintf(h, "%d|%s|%s|%s|%s|%d|%d|%d|%s\x00",
			s.Kind, s.Key, s.Node, s.Zone, s.To, s.Hop, s.Attempt, s.At.UnixNano(), s.Note)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PathTo reconstructs the hop chain that brought item key to the node
// with transport address dst: deliver span first located, then the chain
// of forward spans walked backwards (each hop the earliest transmission
// toward the current node at or before the downstream span's timestamp),
// ending at the publish span when the walk reaches the publisher. The
// result is ordered publish-first. With k-redundant forwarding the walk
// picks the earliest plausible transmission per hop, which is the copy
// that won the race in the common case.
func PathTo(spans []Span, key, dst string) []Span {
	var deliver *Span
	for i := range spans {
		s := &spans[i]
		if s.Kind == KindDeliver && s.Key == key && s.Node == dst {
			deliver = s
			break // canonical order: first deliver is the real one
		}
	}
	if deliver == nil {
		return nil
	}
	path := []Span{*deliver}
	cur, curAt := dst, deliver.At
	for hop := 0; hop < 64; hop++ {
		var best *Span
		for i := range spans {
			s := &spans[i]
			if s.Kind != KindForward || s.Key != key || s.To != cur || s.At.After(curAt) {
				continue
			}
			if best == nil || s.At.Before(best.At) {
				best = s
			}
		}
		if best == nil {
			break
		}
		path = append(path, *best)
		cur, curAt = best.Node, best.At
	}
	for i := range spans {
		s := &spans[i]
		if s.Kind == KindPublish && s.Key == key && s.Node == cur {
			path = append(path, *s)
			break
		}
	}
	// Walked backwards; return publish-first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
