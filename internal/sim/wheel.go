package sim

// Hierarchical timer wheel — the engine's event queue.
//
// The binary heap the engine started with costs O(log n) per insert and
// pop with a poor constant (pointer-chasing comparisons on time.Time).
// At a million simulated nodes the queue holds hundreds of thousands of
// pending deliveries and gossip timers, and heap reshuffling becomes a
// measurable slice of every run. The wheel replaces it with O(1) insert
// and cancel and O(1) amortized pop, while preserving the engine's
// contract exactly: events fire in (time, seq) total order, so serial and
// parallel fingerprints are unchanged.
//
// Shape: wheelLevels levels of wheelSlots slots each. One tick is
// 2^wheelTickShift nanoseconds of virtual time (~1.05 ms), so level 0
// spans ~270 ms, level 1 ~69 s, level 2 ~4.9 h, level 3 ~52 days. Events
// beyond the wheel horizon go to a small overflow heap (drained as the
// wheel advances); in practice simulation timers never reach it.
//
// Placement invariant: an event whose tick equals curTick sits in the
// sorted current-tick buffer; otherwise it is stored at the level of the
// highest 8-bit digit in which its tick differs from curTick, in the slot
// named by its own digit there. Whenever curTick acquires a new digit at
// some level, that level's slot for the new digit is cascaded down, so
// lower levels only ever hold events agreeing with curTick on all higher
// digits — which is what makes a linear bitmap scan per level sufficient
// to find the next occupied tick.
//
// Events within one tick are not simultaneous (a tick is ~1 ms wide and
// event times are nanosecond-resolved), so the current-tick buffer is
// kept sorted by (at, seq); slot buckets are unsorted and sorted once
// when their tick becomes current.

import (
	"math/bits"
	"sort"
	"time"

	"newswire/internal/vtime"
)

const (
	wheelLevels    = 4
	wheelSlotBits  = 8
	wheelSlots     = 1 << wheelSlotBits
	wheelSlotMask  = wheelSlots - 1
	wheelTickShift = 20 // 1 tick = 2^20 ns ≈ 1.05 ms of virtual time
)

// wheelTick maps a virtual timestamp to its wheel tick.
func wheelTick(at time.Time) int64 {
	return int64(at.Sub(vtime.Epoch)) >> wheelTickShift
}

// timerWheel is the queue. Not safe for concurrent use; the engine is
// single-goroutine by design.
type timerWheel struct {
	curTick int64 // tick of the current-tick buffer; never decreases

	// cur holds the events of curTick, sorted by (at, seq); curHead
	// indexes the next event to pop (popping never shifts the slice).
	cur     []*event
	curHead int

	levels [wheelLevels][wheelSlots][]*event
	occ    [wheelLevels][wheelSlots / 64]uint64

	overflow eventHeap // events beyond the wheel horizon

	count     int    // stored events, cancelled included
	cancelled int    // stored events whose fn was cancelled
	highWater int    // max live (count-cancelled) ever observed
	fired     uint64 // events popped for execution
	stopped   uint64 // cancellations ever requested
}

// Len returns the number of live (non-cancelled) events queued.
func (w *timerWheel) Len() int { return w.count - w.cancelled }

// Push stores ev. ev.at must not precede the last popped event's time
// (the engine clamps past times to now before calling).
func (w *timerWheel) Push(ev *event) {
	w.count++
	if live := w.count - w.cancelled; live > w.highWater {
		w.highWater = live
	}
	t := wheelTick(ev.at)
	if t <= w.curTick {
		// Now or sooner (clamped): binary-insert into the current buffer
		// after the popped prefix. New events carry the largest seq, so
		// same-time events land after existing ones, as the heap did.
		i := w.curHead + sort.Search(len(w.cur)-w.curHead, func(i int) bool {
			o := w.cur[w.curHead+i]
			if !o.at.Equal(ev.at) {
				return o.at.After(ev.at)
			}
			return o.seq > ev.seq
		})
		w.cur = append(w.cur, nil)
		copy(w.cur[i+1:], w.cur[i:])
		w.cur[i] = ev
		return
	}
	w.place(ev, t)
}

// place stores an event at the level of the highest digit where its tick
// differs from curTick (tick > curTick).
func (w *timerWheel) place(ev *event, tick int64) {
	diff := uint64(tick ^ w.curTick)
	lvl := (bits.Len64(diff) - 1) / wheelSlotBits
	if lvl >= wheelLevels {
		w.overflow.push(ev)
		return
	}
	slot := int(tick>>(lvl*wheelSlotBits)) & wheelSlotMask
	w.levels[lvl][slot] = append(w.levels[lvl][slot], ev)
	w.occ[lvl][slot>>6] |= 1 << (slot & 63)
}

// Peek returns the earliest live event without removing it, discarding
// cancelled events it encounters. Returns nil when the queue is empty.
func (w *timerWheel) Peek() *event {
	for {
		for w.curHead < len(w.cur) {
			ev := w.cur[w.curHead]
			if ev.fn != nil {
				return ev
			}
			// Cancelled: discard in place.
			w.cur[w.curHead] = nil
			w.curHead++
			w.count--
			w.cancelled--
		}
		if w.count == 0 {
			return nil
		}
		w.advance()
	}
}

// Pop removes and returns the earliest live event, or nil.
func (w *timerWheel) Pop() *event {
	ev := w.Peek()
	if ev == nil {
		return nil
	}
	w.cur[w.curHead] = nil
	w.curHead++
	w.count--
	w.fired++
	return ev
}

// cancel marks ev cancelled, releasing its closure immediately. The event
// shell is discarded lazily when its slot drains. Safe to call more than
// once; reports whether this call did the cancelling.
func (w *timerWheel) cancel(ev *event) bool {
	w.stopped++
	if ev.fn == nil {
		return false
	}
	ev.fn = nil
	w.cancelled++
	return true
}

// advance moves curTick to the next occupied tick and fills the current
// buffer with its events, sorted. Pre: current buffer drained, count > 0.
func (w *timerWheel) advance() {
	w.cur = w.cur[:0]
	w.curHead = 0
	for {
		progressed := false
		for lvl := 0; lvl < wheelLevels; lvl++ {
			shift := lvl * wheelSlotBits
			from := int(w.curTick>>shift)&wheelSlotMask + 1
			slot, ok := w.scan(lvl, from)
			if !ok {
				continue
			}
			// Set digit lvl of curTick to slot, zeroing all lower digits.
			w.curTick = w.curTick&^(int64(1)<<(shift+wheelSlotBits)-1) | int64(slot)<<shift
			if lvl == 0 {
				w.takeSlot(slot)
				if len(w.cur) > 0 {
					return
				}
				// Slot held only cancelled events; keep searching.
			} else {
				w.cascade(lvl, slot)
			}
			progressed = true
			break
		}
		if progressed {
			if len(w.cur) > 0 {
				return
			}
			continue
		}
		// Wheel empty within the horizon; jump to the overflow minimum.
		// (Reaching here with events still stored means they are all in
		// the overflow heap: every wheel level scanned empty.)
		top := w.overflow.pop()
		if top == nil {
			// All remaining events were cancelled shells already dropped.
			return
		}
		w.curTick = wheelTick(top.at)
		w.Push(top)
		w.count-- // Push recounted it
		// Re-place overflow events now within the horizon.
		for w.overflow.len() > 0 {
			t := wheelTick(w.overflow[0].at)
			if (bits.Len64(uint64(t^w.curTick))-1)/wheelSlotBits >= wheelLevels {
				break
			}
			ev := w.overflow.pop()
			if t <= w.curTick {
				i := sort.Search(len(w.cur), func(i int) bool {
					o := w.cur[i]
					if !o.at.Equal(ev.at) {
						return o.at.After(ev.at)
					}
					return o.seq > ev.seq
				})
				w.cur = append(w.cur, nil)
				copy(w.cur[i+1:], w.cur[i:])
				w.cur[i] = ev
			} else {
				w.place(ev, t)
			}
		}
		if len(w.cur) > 0 {
			return
		}
	}
}

// scan finds the first occupied slot >= from at lvl, using the occupancy
// bitmap (4 words per level).
func (w *timerWheel) scan(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	mask := w.occ[lvl][word] &^ (1<<(from&63) - 1)
	for {
		if mask != 0 {
			return word<<6 + bits.TrailingZeros64(mask), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		mask = w.occ[lvl][word]
	}
}

// takeSlot moves a level-0 slot's events into the current buffer, sorted,
// dropping cancelled shells.
func (w *timerWheel) takeSlot(slot int) {
	bucket := w.levels[0][slot]
	w.levels[0][slot] = nil
	w.occ[0][slot>>6] &^= 1 << (slot & 63)
	live := bucket[:0]
	for _, ev := range bucket {
		if ev.fn == nil {
			w.count--
			w.cancelled--
			continue
		}
		live = append(live, ev)
	}
	sort.Slice(live, func(i, j int) bool {
		if !live[i].at.Equal(live[j].at) {
			return live[i].at.Before(live[j].at)
		}
		return live[i].seq < live[j].seq
	})
	w.cur = append(w.cur[:0], live...)
	w.curHead = 0
	// Drop the bucket's references so fired closures don't linger in the
	// retained slot array.
	for i := range bucket {
		bucket[i] = nil
	}
}

// cascade redistributes a higher-level slot after curTick entered its
// digit: its events now differ from curTick only in lower digits.
func (w *timerWheel) cascade(lvl, slot int) {
	bucket := w.levels[lvl][slot]
	w.levels[lvl][slot] = nil
	w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
	for i, ev := range bucket {
		if ev.fn == nil {
			w.count--
			w.cancelled--
		} else if t := wheelTick(ev.at); t <= w.curTick {
			// Lands exactly on the (fresh, empty) current tick.
			w.cur = append(w.cur, ev)
		} else {
			w.place(ev, t)
		}
		bucket[i] = nil
	}
	if len(w.cur) > 1 {
		sort.Slice(w.cur, func(i, j int) bool {
			if !w.cur[i].at.Equal(w.cur[j].at) {
				return w.cur[i].at.Before(w.cur[j].at)
			}
			return w.cur[i].seq < w.cur[j].seq
		})
	}
}

// eventHeap is a plain binary min-heap over (at, seq), retained for the
// wheel's overflow region (events beyond ~52 days of virtual time).
type eventHeap []*event

func (h eventHeap) len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	if n == 0 {
		return nil
	}
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
