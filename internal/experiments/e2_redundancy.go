package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"newswire/internal/baseline"
	"newswire/internal/news"
	"newswire/internal/vtime"
	"newswire/internal/workload"
)

// RunE2 reproduces the §1 redundancy claim: "a consumer who returns 4
// times during a day receives about 70% redundant data", comparing the
// full-page pull, RSS pull and delta-encoded pull against NewsWire push.
//
// The claim is about *returning* readers, so the simulation runs two
// days: day one warms each reader up (they have read yesterday's front
// page), day two is measured.
func RunE2(opt Options) *Table {
	visitClasses := []int{1, 2, 4, 8, 24}
	readersPerClass := 100
	if opt.Quick {
		readersPerClass = 25
	}
	t := &Table{
		ID:    "E2",
		Title: "pull-model redundancy for returning readers (steady state day)",
		Claim: "4-visit/day readers receive ~70% redundant data (§1)",
		Columns: []string{"visits/day", "full-pull", "rss-pull",
			"delta-pull", "push", "full KB/reader"},
	}

	rng := rand.New(rand.NewSource(opt.Seed + 2))
	clock := vtime.NewVirtual()
	day1 := clock.Now()
	day2 := day1.Add(24 * time.Hour)

	// Two Slashdot-like days of articles (~24 stories/day).
	gen, err := workload.NewArticleGen(workload.SlashdotProfile(), rng)
	if err != nil {
		t.Notes = append(t.Notes, "generator error: "+err.Error())
		return t
	}
	var items []*news.Item
	items = append(items, gen.DayOfArticles(day1)...)
	items = append(items, gen.DayOfArticles(day2)...)

	servers := map[baseline.FetchMode]*baseline.PullServer{}
	modes := []baseline.FetchMode{baseline.FetchFull, baseline.FetchRSS, baseline.FetchDelta}
	for _, mode := range modes {
		s, err := baseline.NewPullServer(clock, 15, 0)
		if err != nil {
			t.Notes = append(t.Notes, "server error: "+err.Error())
			return t
		}
		servers[mode] = s
	}

	type visit struct {
		at     time.Time
		class  int
		reader int
	}
	var visits []visit
	readers := make(map[int]map[baseline.FetchMode][]*baseline.Reader)
	for _, v := range visitClasses {
		readers[v] = map[baseline.FetchMode][]*baseline.Reader{}
		for _, mode := range modes {
			rs := make([]*baseline.Reader, readersPerClass)
			for i := range rs {
				rs[i] = baseline.NewReader()
			}
			readers[v][mode] = rs
		}
		for i := 0; i < readersPerClass; i++ {
			profile := workload.ReaderProfile{VisitsPerDay: v}
			for _, at := range profile.VisitTimes(rng, day1) {
				visits = append(visits, visit{at: at, class: v, reader: i})
			}
			for _, at := range profile.VisitTimes(rng, day2) {
				visits = append(visits, visit{at: at, class: v, reader: i})
			}
		}
	}
	sort.Slice(visits, func(i, j int) bool { return visits[i].at.Before(visits[j].at) })

	// Replay both days, snapshotting each reader's counters at the day
	// boundary so only day-two traffic is reported.
	type snapshot struct{ total, redundant int64 }
	snaps := make(map[*baseline.Reader]snapshot)
	snapped := false
	pi := 0
	for _, vis := range visits {
		if !snapped && !vis.at.Before(day2) {
			for _, v := range visitClasses {
				for _, mode := range modes {
					for _, r := range readers[v][mode] {
						snaps[r] = snapshot{total: r.TotalBytes, redundant: r.RedundantBytes}
					}
				}
			}
			snapped = true
		}
		for pi < len(items) && !items[pi].Published.After(vis.at) {
			for _, s := range servers {
				s.Publish(items[pi])
			}
			pi++
		}
		clock.SetNow(vis.at)
		for _, mode := range modes {
			servers[mode].Visit(readers[vis.class][mode][vis.reader], mode)
		}
	}

	// Push bytes for day two only.
	var pushBytes int64
	for _, it := range items {
		if !it.Published.Before(day2) {
			pushBytes += int64(it.Size())
		}
	}

	for _, v := range visitClasses {
		agg := func(mode baseline.FetchMode) (frac float64, perReader int64) {
			var red, tot int64
			for _, r := range readers[v][mode] {
				s := snaps[r]
				red += r.RedundantBytes - s.redundant
				tot += r.TotalBytes - s.total
			}
			if tot == 0 {
				return 0, 0
			}
			return float64(red) / float64(tot), tot / int64(readersPerClass)
		}
		fullFrac, fullBytes := agg(baseline.FetchFull)
		rssFrac, _ := agg(baseline.FetchRSS)
		deltaFrac, _ := agg(baseline.FetchDelta)
		t.AddRow(
			fmt.Sprint(v),
			fmtPct(fullFrac),
			fmtPct(rssFrac),
			fmtPct(deltaFrac),
			fmtPct(0), // push never re-sends
			fmt.Sprintf("%.0f", float64(fullBytes)/1024),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d articles over two days, front page of 15, %d readers/class; day two measured",
			len(items), readersPerClass),
		fmt.Sprintf("push delivers %.0f KB/reader for the same day", float64(pushBytes)/1024))
	return t
}
