package value

import "sync"

// Attribute-name interning.
//
// A running system handles a tiny, heavily repeated vocabulary of
// attribute names ("addr", "load", "nmembers", "subs", ...), but every
// decoded wire message used to retain its own copy of each name for as
// long as the rows it carried stayed merged into a table. At simulation
// scale that is millions of identical short strings. Interning maps each
// name to one canonical instance.
//
// The table is capped: attribute names are an open set in principle
// (prefix-rule attributes are generated per subscription), and an
// adversarial peer must not be able to grow process memory without bound
// by inventing names. Past the cap, Intern degrades to identity.

const maxInterned = 1 << 14

var (
	internMu sync.RWMutex
	interned = make(map[string]string)
)

// Intern returns the canonical instance of s, registering it if the
// table has room. The returned string is always equal to s.
func Intern(s string) string {
	internMu.RLock()
	c, ok := interned[s]
	internMu.RUnlock()
	if ok {
		return c
	}
	internMu.Lock()
	defer internMu.Unlock()
	if c, ok := interned[s]; ok {
		return c
	}
	if len(interned) >= maxInterned {
		return s
	}
	interned[s] = s
	return s
}

// InternKeys re-keys m through the intern table so the map retains one
// shared instance of each attribute name instead of per-message copies.
// Values are untouched. Callers must own m (decode paths do).
func (m Map) InternKeys() {
	var scratch [16]string
	keys := scratch[:0]
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		v := m[k]
		// Delete before re-inserting: assigning to an existing key keeps
		// the key instance already in the map, which is exactly the
		// per-message copy we want to drop.
		delete(m, k)
		m[Intern(k)] = v
	}
}
