// Package cache implements the end-system message cache of paper §9: news
// items are delivered into a cache that feeds the applications; automatic
// cache management garbage-collects and fuses revisions based on item
// metadata; and the same cache serves end-to-end reliability (replay after
// forwarding-node failures) and limited state transfer to joining
// participants.
package cache

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"newswire/internal/trace"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// Config configures a Cache.
type Config struct {
	// Clock supplies time for TTL decisions. Required.
	Clock vtime.Clock
	// MaxItems bounds the cache; the oldest-received entries are evicted
	// first. Default 1024.
	MaxItems int
	// TTL expires entries by age since receipt (0 disables age expiry).
	TTL time.Duration
	// FuseRevisions keeps only the newest revision of each item series,
	// fusing superseded revisions away on arrival (§9's "fused or
	// aggregated into a more compact form").
	FuseRevisions bool
	// Tracer, when non-nil, receives a dedup-drop span for every duplicate
	// or superseded envelope the cache suppresses. TraceNode names this
	// node in those spans (typically the transport address).
	Tracer    trace.Recorder
	TraceNode string
}

// Stats counts cache activity.
type Stats struct {
	Puts       int64
	Duplicates int64
	Fused      int64
	Expired    int64
	Evicted    int64
}

type entry struct {
	env      wire.ItemEnvelope
	received time.Time
	seq      int64
}

// Cache is a bounded store of item envelopes keyed by their unique
// publisher/ID/revision key. It is safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry // key -> entry
	series  map[string]int    // series key -> newest revision present
	order   []string          // insertion order, for O(1) amortized eviction
	stats   Stats
	seq     int64
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cache: clock required")
	}
	if cfg.MaxItems == 0 {
		cfg.MaxItems = 1024
	}
	if cfg.MaxItems < 0 {
		return nil, fmt.Errorf("cache: negative MaxItems")
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[string]*entry),
		series:  make(map[string]int),
	}, nil
}

// Put stores an envelope. It returns false when the envelope is a
// duplicate (already present, or — with revision fusion on — already
// superseded by a newer revision); true means the item is new to this
// node. Put enforces MaxItems immediately.
func (c *Cache) Put(env wire.ItemEnvelope) bool {
	key := env.Key()
	seriesKey := env.Publisher + "/" + env.ItemID

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Puts++

	if _, dup := c.entries[key]; dup {
		c.stats.Duplicates++
		c.traceDropLocked(key, "cache-dup")
		return false
	}
	if c.cfg.FuseRevisions {
		if newest, ok := c.series[seriesKey]; ok {
			if env.Revision <= newest {
				// Superseded revision arriving late: fused away.
				c.stats.Duplicates++
				c.traceDropLocked(key, "cache-superseded")
				return false
			}
			// Newer revision: fuse the older one out.
			oldKey := fmt.Sprintf("%s#%d", seriesKey, newest)
			if _, ok := c.entries[oldKey]; ok {
				delete(c.entries, oldKey)
				c.stats.Fused++
			}
		}
		c.series[seriesKey] = env.Revision
	}

	c.seq++
	c.entries[key] = &entry{env: env, received: c.cfg.Clock.Now(), seq: c.seq}
	c.order = append(c.order, key)
	c.enforceCapLocked()
	return true
}

// traceDropLocked emits a dedup-drop span when a tracer is attached. The
// nil check is the entire cost of the disabled path. Called with c.mu
// held; the recorders never call back into the cache, so no lock cycle.
func (c *Cache) traceDropLocked(key, note string) {
	if c.cfg.Tracer == nil {
		return
	}
	c.cfg.Tracer.Record(trace.Span{
		Kind: trace.KindDedupDrop, Key: key, TraceID: trace.DeriveTraceID(key),
		Node: c.cfg.TraceNode, At: c.cfg.Clock.Now(), Note: note,
	})
}

// Has reports whether the exact envelope key is cached. With revision
// fusion, a superseded revision also counts as present (it was fused).
func (c *Cache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return true
	}
	if c.cfg.FuseRevisions {
		if i := lastHash(key); i >= 0 {
			series := key[:i]
			var rev int
			if _, err := fmt.Sscanf(key[i+1:], "%d", &rev); err == nil {
				if newest, ok := c.series[series]; ok && rev <= newest {
					return true
				}
			}
		}
	}
	return false
}

func lastHash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' {
			return i
		}
	}
	return -1
}

// Get returns the cached envelope for key.
func (c *Cache) Get(key string) (wire.ItemEnvelope, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.env, true
	}
	return wire.ItemEnvelope{}, false
}

// Latest returns the newest cached revision of a series
// ("publisher/itemID").
func (c *Cache) Latest(seriesKey string) (wire.ItemEnvelope, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	for _, e := range c.entries {
		if e.env.Publisher+"/"+e.env.ItemID != seriesKey {
			continue
		}
		if best == nil || e.env.Revision > best.env.Revision {
			best = e
		}
	}
	if best == nil {
		return wire.ItemEnvelope{}, false
	}
	return best.env, true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Since returns up to max envelopes published at or after t (all of them
// when max <= 0), optionally restricted to items matching any of the given
// subjects, ordered by publication time. truncated reports whether max cut
// the result short. This is the state-transfer query (§9): joining nodes
// and recovering subscribers call it on a peer.
func (c *Cache) Since(t time.Time, subjects []string, max int) (envs []wire.ItemEnvelope, truncated bool) {
	c.mu.Lock()
	var matched []*entry
	for _, e := range c.entries {
		if e.env.Published.Before(t) {
			continue
		}
		if len(subjects) > 0 && !matchesAny(e.env.Subjects, subjects) {
			continue
		}
		matched = append(matched, e)
	}
	c.mu.Unlock()

	sort.Slice(matched, func(i, j int) bool {
		if !matched[i].env.Published.Equal(matched[j].env.Published) {
			return matched[i].env.Published.Before(matched[j].env.Published)
		}
		return matched[i].seq < matched[j].seq
	})
	if max > 0 && len(matched) > max {
		matched = matched[:max]
		truncated = true
	}
	envs = make([]wire.ItemEnvelope, len(matched))
	for i, e := range matched {
		envs[i] = e.env
	}
	return envs, truncated
}

func matchesAny(have, want []string) bool {
	for _, w := range want {
		for _, h := range have {
			if h == w {
				return true
			}
		}
	}
	return false
}

// GC expires entries older than TTL (if configured) and returns how many
// were removed. Capacity is enforced on Put, not here.
func (c *Cache) GC() int {
	if c.cfg.TTL <= 0 {
		return 0
	}
	cutoff := c.cfg.Clock.Now().Add(-c.cfg.TTL)
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, e := range c.entries {
		if e.received.Before(cutoff) {
			delete(c.entries, key)
			removed++
			c.stats.Expired++
		}
	}
	return removed
}

// enforceCapLocked evicts oldest-inserted entries beyond MaxItems by
// draining the insertion-order queue, skipping keys that fusion or GC
// already removed.
func (c *Cache) enforceCapLocked() {
	for len(c.entries) > c.cfg.MaxItems && len(c.order) > 0 {
		key := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.entries[key]; !ok {
			continue // already fused or expired
		}
		delete(c.entries, key)
		c.stats.Evicted++
	}
	// Keep the queue from accumulating tombstones indefinitely.
	if len(c.order) > 2*len(c.entries)+16 {
		live := make([]string, 0, len(c.entries))
		for _, key := range c.order {
			if _, ok := c.entries[key]; ok {
				live = append(live, key)
			}
		}
		c.order = live
	}
}
