package bloom

import (
	"encoding/binary"
	"math/bits"
)

// Signature sets are the zone-subgrouping representation of predicate
// subscriptions (pubsub.ModePredicate): instead of one OR-of-everything
// Bloom filter per zone row, a row carries up to K subgroup filters, each
// the union of a cluster of similar member signatures. An intermediate
// zone forwards an item when ANY subgroup filter admits it — with
// multi-bit hashing that conjunction-within-one-filter test is strictly
// tighter than testing the union of all subgroups, which is what cuts
// false-positive forwards (Shafique et al., subscription subgrouping).
//
// The wire form is self-describing and aggregation-friendly:
//
//	uvarint K | uvarint n | n × (uvarint len, len entry bytes)
//
// Each entry is one filter in whichever of two encodings is smaller:
//
//	FilterRaw    | raw bitmap bytes
//	FilterSparse | uvarint rawLen | uvarint count | count × uvarint
//
// The sparse form lists set-bit positions (first absolute, then deltas),
// which is what a single leaf's signature almost always is — a few dozen
// set bits in a couple of thousand — so leaf rows gossip a fraction of
// the raw bitmap's bytes. Saturated union filters at ancestor zones stay
// raw.
//
// Merging two sets concatenates their filters and greedily re-clusters
// down to K by repeatedly OR-merging the pair whose union has the lowest
// popcount (ties resolve to the lowest indices), so aggregation is
// deterministic given a deterministic fold order. Bits are only ever
// added, which keeps compiled-signature soundness intact end to end.

// Filter entry encodings inside a signature set.
const (
	// FilterRaw tags a raw bitmap entry.
	FilterRaw = 0x00
	// FilterSparse tags a delta-encoded set-bit position list entry.
	FilterSparse = 0x01
)

// maxFilterBytes bounds a decoded filter's size (1<<20 bits); a sparse
// entry claiming more is malformed, not an allocation request.
const maxFilterBytes = 1 << 17

// EncodeSignatureSet packs K and the given filter byte strings, choosing
// the smaller of the raw and sparse encodings per filter. A k < 1 is
// stored as 1.
func EncodeSignatureSet(k int, filters [][]byte) []byte {
	if k < 1 {
		k = 1
	}
	entries := make([][]byte, len(filters))
	size := binary.MaxVarintLen64 * 2
	for i, f := range filters {
		entries[i] = encodeFilterEntry(f)
		size += binary.MaxVarintLen64 + len(entries[i])
	}
	out := make([]byte, 0, size)
	out = binary.AppendUvarint(out, uint64(k))
	out = binary.AppendUvarint(out, uint64(len(filters)))
	for _, e := range entries {
		out = binary.AppendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	return out
}

// encodeFilterEntry picks the cheaper encoding for one filter.
func encodeFilterEntry(f []byte) []byte {
	pc := 0
	for _, c := range f {
		pc += bits.OnesCount8(c)
	}
	// Sparse wins whenever the position list is actually smaller than the
	// bitmap — each position costs at least one delta byte, so pc >= len
	// can never win and skips the trial encode. Probing a sparse entry
	// costs one expansion per distinct row payload (the forwarding path
	// caches expansions against the row's immutable bytes), so the choice
	// here is purely about gossip bytes.
	if pc < len(f) {
		sparse := make([]byte, 0, pc*5+2*binary.MaxVarintLen64+1)
		sparse = append(sparse, FilterSparse)
		sparse = binary.AppendUvarint(sparse, uint64(len(f)))
		sparse = binary.AppendUvarint(sparse, uint64(pc))
		prev := uint64(0)
		first := true
		for i, c := range f {
			for ; c != 0; c &= c - 1 {
				pos := uint64(i*8 + bits.TrailingZeros8(c))
				if first {
					sparse = binary.AppendUvarint(sparse, pos)
					first = false
				} else {
					sparse = binary.AppendUvarint(sparse, pos-prev)
				}
				prev = pos
			}
		}
		if len(sparse) < len(f)+1 {
			return sparse
		}
	}
	out := make([]byte, 0, len(f)+1)
	out = append(out, FilterRaw)
	return append(out, f...)
}

// decodeFilterEntry materializes one entry back into raw bitmap bytes.
// Raw entries alias blob; sparse entries allocate.
func decodeFilterEntry(blob []byte) ([]byte, bool) {
	if len(blob) == 0 {
		return nil, false
	}
	switch blob[0] {
	case FilterRaw:
		return blob[1:], true
	case FilterSparse:
		return decodeSparseFilter(blob[1:])
	}
	return nil, false
}

func decodeSparseFilter(enc []byte) ([]byte, bool) {
	rawLen, n := binary.Uvarint(enc)
	if n <= 0 || rawLen > maxFilterBytes {
		return nil, false
	}
	f := make([]byte, rawLen)
	if ExpandSparseFilter(f, enc) != SparseOK {
		return nil, false
	}
	return f, true
}

// SparseExpandResult reports how expanding a sparse entry went.
type SparseExpandResult int

// ExpandSparseFilter outcomes.
const (
	// SparseOK: dst now holds the filter's raw bitmap.
	SparseOK SparseExpandResult = iota
	// SparseWrongSize: the entry encodes a different raw length than
	// len(dst) — a filter from another geometry, not a malformed one.
	SparseWrongSize
	// SparseMalformed: the entry does not parse.
	SparseMalformed
)

// ExpandSparseFilter decodes a FilterSparse payload (the bytes after the
// tag) into dst, which the caller provides zeroed. This is the
// allocation-free path the forwarding test uses on leaf rows.
func ExpandSparseFilter(dst, enc []byte) SparseExpandResult {
	rawLen, n := binary.Uvarint(enc)
	if n <= 0 || rawLen > maxFilterBytes {
		return SparseMalformed
	}
	if rawLen != uint64(len(dst)) {
		return SparseWrongSize
	}
	enc = enc[n:]
	count, n := binary.Uvarint(enc)
	if n <= 0 || count > rawLen*8 {
		return SparseMalformed
	}
	enc = enc[n:]
	pos := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Uvarint(enc)
		if n <= 0 {
			return SparseMalformed
		}
		enc = enc[n:]
		if i == 0 {
			pos = d
		} else {
			pos += d
		}
		if pos >= rawLen*8 {
			return SparseMalformed
		}
		dst[pos/8] |= 1 << (pos % 8)
	}
	return SparseOK
}

// DecodeSignatureSet unpacks an encoded set into raw bitmap filters. Raw
// entries alias enc (callers must not mutate them); sparse entries are
// materialized. A malformed encoding returns ok=false (gossip can deliver
// scrambled rows; decoding must never panic).
func DecodeSignatureSet(enc []byte) (k int, filters [][]byte, ok bool) {
	kk, n := binary.Uvarint(enc)
	if n <= 0 || kk < 1 || kk > 1<<16 {
		return 0, nil, false
	}
	enc = enc[n:]
	cnt, n := binary.Uvarint(enc)
	if n <= 0 || cnt > 1<<16 {
		return 0, nil, false
	}
	enc = enc[n:]
	filters = make([][]byte, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, n := binary.Uvarint(enc)
		if n <= 0 || uint64(len(enc)-n) < l {
			return 0, nil, false
		}
		f, fok := decodeFilterEntry(enc[n : n+int(l)])
		if !fok {
			return 0, nil, false
		}
		filters = append(filters, f)
		enc = enc[n+int(l):]
	}
	return int(kk), filters, true
}

// SignatureSetLen returns the number of subgroup filters in an encoded
// set, 0 when malformed.
func SignatureSetLen(enc []byte) int {
	var skip int
	if _, n := binary.Uvarint(enc); n <= 0 {
		return 0
	} else {
		skip = n
	}
	cnt, n := binary.Uvarint(enc[skip:])
	if n <= 0 || cnt > 1<<16 {
		return 0
	}
	return int(cnt)
}

// IterSignatureSet walks an encoded set's filters as raw bitmaps, calling
// fn for each until fn returns true (sparse entries are materialized per
// call). It reports whether any call returned true; a malformed encoding
// reports false.
func IterSignatureSet(enc []byte, fn func(filter []byte) bool) bool {
	if _, n := binary.Uvarint(enc); n <= 0 {
		return false
	} else {
		enc = enc[n:]
	}
	cnt, n := binary.Uvarint(enc)
	if n <= 0 || cnt > 1<<16 {
		return false
	}
	enc = enc[n:]
	for i := uint64(0); i < cnt; i++ {
		l, n := binary.Uvarint(enc)
		if n <= 0 || uint64(len(enc)-n) < l {
			return false
		}
		f, fok := decodeFilterEntry(enc[n : n+int(l)])
		if !fok {
			return false
		}
		if fn(f) {
			return true
		}
		enc = enc[n+int(l):]
	}
	return false
}

// MergeSignatureSets combines two encoded sets: K is the larger of the
// two, the filters are concatenated and greedily clustered back down to
// K. A malformed side is treated as empty, so one scrambled row cannot
// poison a zone's aggregate. Deterministic.
func MergeSignatureSets(a, b []byte) []byte {
	ka, fa, oka := DecodeSignatureSet(a)
	kb, fb, okb := DecodeSignatureSet(b)
	switch {
	case !oka && !okb:
		return EncodeSignatureSet(1, nil)
	case !oka:
		return append([]byte(nil), b...)
	case !okb:
		return append([]byte(nil), a...)
	}
	k := ka
	if kb > k {
		k = kb
	}
	merged := make([][]byte, 0, len(fa)+len(fb))
	for _, f := range fa {
		merged = append(merged, append([]byte(nil), f...))
	}
	for _, f := range fb {
		merged = append(merged, append([]byte(nil), f...))
	}
	return EncodeSignatureSet(k, clusterFilters(merged, k))
}

// clusterFilters greedily reduces filters by repeatedly OR-merging the
// pair whose union has the smallest popcount — the two most-similar (or
// smallest) filters — breaking ties toward the lowest pair of indices.
// Merging is mandatory above the K budget and opportunistic below it:
// while the best union stays under saturationBound, two subgroups fold
// into one at (almost) no precision cost, so a zone of like-minded
// members collapses toward a single filter and its row costs no more
// gossip bytes than the plain Bloom union would. Only genuinely diverse
// membership spends the full K filters. Filters are mutated in place
// (callers pass owned copies). Deterministic: no map iteration, no
// randomness.
func clusterFilters(filters [][]byte, k int) [][]byte {
	if k < 1 {
		k = 1
	}
	for len(filters) > 1 {
		bi, bj, best := 0, 1, -1
		for i := 0; i < len(filters); i++ {
			for j := i + 1; j < len(filters); j++ {
				pc := unionPopCount(filters[i], filters[j])
				if best < 0 || pc < best {
					bi, bj, best = i, j, pc
				}
			}
		}
		if len(filters) <= k && best > saturationBound(filters[bi], filters[bj]) {
			break
		}
		filters[bi] = orInto(filters[bi], filters[bj])
		filters = append(filters[:bj], filters[bj+1:]...)
	}
	return filters
}

// saturationBound is the union popcount up to which two subgroup filters
// merge even under the K budget: a filter filling at most 2/5 of its bit
// space keeps the per-probe false-positive rate below (2/5)^hashes, so
// the merge trades almost no precision for one fewer filter on every
// gossip of the row.
func saturationBound(a, b []byte) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	return n * 8 * 2 / 5
}

// unionPopCount counts set bits in a|b without allocating.
func unionPopCount(a, b []byte) int {
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	n := 0
	for i, c := range long {
		if i < len(short) {
			c |= short[i]
		}
		n += bits.OnesCount8(c)
	}
	return n
}

// orInto ORs src into dst, growing dst when src is longer, and returns
// the result.
func orInto(dst, src []byte) []byte {
	if len(src) > len(dst) {
		grown := make([]byte, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, c := range src {
		dst[i] |= c
	}
	return dst
}
