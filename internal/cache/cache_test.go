package cache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"newswire/internal/vtime"
	"newswire/internal/wire"
)

func env(pub, id string, rev int, published time.Time, subjects ...string) wire.ItemEnvelope {
	if len(subjects) == 0 {
		subjects = []string{"tech/linux"}
	}
	return wire.ItemEnvelope{
		Publisher: pub,
		ItemID:    id,
		Revision:  rev,
		Subjects:  subjects,
		Published: published,
	}
}

func newTestCache(t *testing.T, cfg Config) (*Cache, *vtime.Virtual) {
	t.Helper()
	clock := vtime.NewVirtual()
	cfg.Clock = clock
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(Config{Clock: vtime.Real{}, MaxItems: -1}); err == nil {
		t.Error("negative MaxItems accepted")
	}
}

func TestPutAndGet(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	e := env("p", "a", 0, clock.Now())
	if !c.Put(e) {
		t.Fatal("first Put returned duplicate")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, ok := c.Get("p/a#0")
	if !ok || got.ItemID != "a" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if !c.Has("p/a#0") {
		t.Fatal("Has = false")
	}
	if c.Has("p/a#1") {
		t.Fatal("Has for absent key = true")
	}
}

func TestPutDuplicate(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	e := env("p", "a", 0, clock.Now())
	c.Put(e)
	if c.Put(e) {
		t.Fatal("duplicate Put returned true")
	}
	st := c.Stats()
	if st.Duplicates != 1 || st.Puts != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRevisionFusion(t *testing.T) {
	c, clock := newTestCache(t, Config{FuseRevisions: true})
	c.Put(env("p", "a", 0, clock.Now()))
	if !c.Put(env("p", "a", 1, clock.Now())) {
		t.Fatal("newer revision rejected")
	}
	// Old revision fused away.
	if _, ok := c.Get("p/a#0"); ok {
		t.Fatal("superseded revision still cached")
	}
	if _, ok := c.Get("p/a#1"); !ok {
		t.Fatal("newest revision missing")
	}
	// Late arrival of a superseded revision is a duplicate.
	if c.Put(env("p", "a", 0, clock.Now())) {
		t.Fatal("late superseded revision accepted")
	}
	// Has considers fused revisions present.
	if !c.Has("p/a#0") {
		t.Fatal("fused revision should count as seen")
	}
	if st := c.Stats(); st.Fused != 1 {
		t.Fatalf("Fused = %d", st.Fused)
	}
}

func TestNoFusionKeepsRevisions(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	c.Put(env("p", "a", 0, clock.Now()))
	c.Put(env("p", "a", 1, clock.Now()))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want both revisions", c.Len())
	}
	if c.Has("p/a#2") {
		t.Fatal("unseen revision reported present without fusion")
	}
}

func TestLatest(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	c.Put(env("p", "a", 0, clock.Now()))
	c.Put(env("p", "a", 2, clock.Now()))
	c.Put(env("p", "b", 5, clock.Now()))
	got, ok := c.Latest("p/a")
	if !ok || got.Revision != 2 {
		t.Fatalf("Latest = %+v, %v", got, ok)
	}
	if _, ok := c.Latest("p/zzz"); ok {
		t.Fatal("Latest for unknown series = true")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c, clock := newTestCache(t, Config{MaxItems: 3})
	for i := 0; i < 5; i++ {
		c.Put(env("p", fmt.Sprintf("i%d", i), 0, clock.Now()))
		clock.Advance(time.Second)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// The two oldest are gone.
	if c.Has("p/i0#0") || c.Has("p/i1#0") {
		t.Fatal("oldest entries not evicted")
	}
	if !c.Has("p/i4#0") {
		t.Fatal("newest entry evicted")
	}
	if st := c.Stats(); st.Evicted != 2 {
		t.Fatalf("Evicted = %d", st.Evicted)
	}
}

func TestGCExpiresByTTL(t *testing.T) {
	c, clock := newTestCache(t, Config{TTL: 10 * time.Second})
	c.Put(env("p", "old", 0, clock.Now()))
	clock.Advance(11 * time.Second)
	c.Put(env("p", "new", 0, clock.Now()))
	if n := c.GC(); n != 1 {
		t.Fatalf("GC removed %d, want 1", n)
	}
	if c.Has("p/old#0") {
		t.Fatal("expired entry still present")
	}
	if !c.Has("p/new#0") {
		t.Fatal("fresh entry expired")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d", st.Expired)
	}
}

func TestGCDisabledWithoutTTL(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	c.Put(env("p", "a", 0, clock.Now()))
	clock.Advance(time.Hour)
	if n := c.GC(); n != 0 {
		t.Fatalf("GC without TTL removed %d", n)
	}
}

func TestSinceOrderingAndFiltering(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	t0 := clock.Now()
	c.Put(env("p", "late", 0, t0.Add(3*time.Second)))
	c.Put(env("p", "early", 0, t0.Add(1*time.Second)))
	c.Put(env("p", "mid", 0, t0.Add(2*time.Second), "sports/soccer"))
	c.Put(env("p", "ancient", 0, t0.Add(-time.Hour)))

	// All since t0, ordered by publication.
	envs, truncated := c.Since(t0, nil, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(envs) != 3 {
		t.Fatalf("got %d envelopes", len(envs))
	}
	if envs[0].ItemID != "early" || envs[1].ItemID != "mid" || envs[2].ItemID != "late" {
		t.Fatalf("order = %v %v %v", envs[0].ItemID, envs[1].ItemID, envs[2].ItemID)
	}

	// Subject filter.
	envs, _ = c.Since(t0, []string{"sports/soccer"}, 0)
	if len(envs) != 1 || envs[0].ItemID != "mid" {
		t.Fatalf("subject filter = %v", envs)
	}

	// Max with truncation flag.
	envs, truncated = c.Since(t0, nil, 2)
	if len(envs) != 2 || !truncated {
		t.Fatalf("max: %d envelopes, truncated=%v", len(envs), truncated)
	}
}

func TestSinceEmpty(t *testing.T) {
	c, clock := newTestCache(t, Config{})
	envs, truncated := c.Since(clock.Now(), nil, 10)
	if len(envs) != 0 || truncated {
		t.Fatalf("Since on empty cache = %v, %v", envs, truncated)
	}
}

// Property: after Put(env) returns true, Has(env.Key()) is true and Len
// never exceeds MaxItems.
func TestQuickPutHasAndCapInvariant(t *testing.T) {
	f := func(ids []uint8, maxItems uint8) bool {
		cap := int(maxItems%32) + 1
		clock := vtime.NewVirtual()
		c, err := New(Config{Clock: clock, MaxItems: cap})
		if err != nil {
			return false
		}
		for _, id := range ids {
			e := env("p", fmt.Sprintf("i%d", id), 0, clock.Now())
			stored := c.Put(e)
			if stored && !c.Has(e.Key()) {
				return false
			}
			if c.Len() > cap {
				return false
			}
			clock.Advance(time.Second)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with fusion on, at most one revision of a series is ever
// cached.
func TestQuickFusionKeepsOneRevision(t *testing.T) {
	f := func(revs []uint8) bool {
		clock := vtime.NewVirtual()
		c, err := New(Config{Clock: clock, FuseRevisions: true})
		if err != nil {
			return false
		}
		for _, r := range revs {
			c.Put(env("p", "story", int(r), clock.Now()))
		}
		return c.Len() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionSkipsFusedTombstones(t *testing.T) {
	// Fusion removes entries out of insertion order; eviction must skip
	// those tombstones and still evict the right (oldest live) entries.
	c, clock := newTestCache(t, Config{MaxItems: 3, FuseRevisions: true})
	c.Put(env("p", "a", 0, clock.Now())) // will be fused by rev 1
	c.Put(env("p", "b", 0, clock.Now()))
	c.Put(env("p", "a", 1, clock.Now())) // fuses a#0
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Put(env("p", "c", 0, clock.Now()))
	c.Put(env("p", "d", 0, clock.Now())) // over capacity: evict oldest live = b
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Note Get, not Has: with fusion on, Has remembers seen revisions via
	// the series map even after storage eviction (dedup semantics).
	if _, ok := c.Get("p/b#0"); ok {
		t.Fatal("oldest live entry not evicted")
	}
	for _, k := range []string{"p/a#1", "p/c#0", "p/d#0"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
}

func TestEvictionQueueCompaction(t *testing.T) {
	// Heavy fusion must not leave the order queue growing unboundedly.
	c, clock := newTestCache(t, Config{MaxItems: 100, FuseRevisions: true})
	for rev := 0; rev < 10000; rev++ {
		c.Put(env("p", "hot", rev, clock.Now()))
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 fused entry", c.Len())
	}
}
