package experiments

import (
	"fmt"
	"time"

	"newswire/internal/core"
	"newswire/internal/news"
)

// RunE6 measures delivery under forwarder failure with and without
// k-redundant representatives and cache-based end-to-end recovery — the
// §9–10 machinery ("multiple representatives to forward a new item, to
// increase the robustness of the delivery"; "the same cache is used for
// assisting in achieving end-to-end reliability in the case of forwarding
// node failures").
func RunE6(opt Options) *Table {
	killFractions := []float64{0, 0.05, 0.10, 0.20}
	repCounts := []int{1, 2, 3}
	if opt.Quick {
		killFractions = []float64{0, 0.10}
		repCounts = []int{1, 3}
	}
	n := 192
	if opt.Quick {
		n = 96
	}
	t := &Table{
		ID:    "E6",
		Title: "delivery under forwarder failure (k reps, cache recovery)",
		Claim: "redundant representatives + cache recovery preserve delivery (§9-10)",
		Columns: []string{"killed", "k", "delivered", "after recovery",
			"dup forwards"},
	}

	const itemCount = 10
	for _, phi := range killFractions {
		for _, k := range repCounts {
			row := runE6Case(opt.Seed, n, phi, k, itemCount)
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d nodes, branching 16; failures injected right before publishing (tables still list the dead)", n),
		"'delivered' counts live subscribers only; recovery = one RecoverFromZonePeer round")
	return t
}

func runE6Case(seed int64, n int, phi float64, k, itemCount int) []string {
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 16, Seed: seed + int64(phi*100) + int64(k),
		Customize: func(i int, cfg *core.Config) {
			cfg.RepCount = k
		},
	})
	if err != nil {
		return []string{"error", err.Error(), "", "", ""}
	}
	for _, node := range cluster.Nodes {
		_ = node.Subscribe("tech/security")
	}
	cluster.RunRounds(10)

	// Kill a fraction of nodes (never the publisher, node 0) right
	// before publishing so every table still lists them as live
	// representatives.
	killed := int(phi * float64(n))
	for i := 0; i < killed; i++ {
		victim := cluster.Nodes[1+(i*7)%(n-1)]
		cluster.Net.Crash(victim.Addr())
	}

	pubAt := cluster.Eng.Now()
	for i := 0; i < itemCount; i++ {
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("rob-%d", i),
			Headline: "x", Body: "y",
			Subjects:  []string{"tech/security"},
			Published: pubAt,
		}
		_ = cluster.Nodes[0].PublishItem(it, "", "")
	}
	cluster.RunFor(20 * time.Second)

	liveNodes := 0
	var got int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		liveNodes++
		got += node.Delivered()
	}
	want := int64(liveNodes * itemCount)
	before := float64(got) / float64(want)

	// End-to-end recovery: every live node that missed something asks a
	// zone peer's cache.
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		if node.Delivered() < int64(itemCount) {
			_ = node.RecoverFromZonePeer(itemCount * 2)
		}
	}
	cluster.RunFor(10 * time.Second)
	// A second pass covers peers that themselves recovered first.
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		if node.Delivered() < int64(itemCount) {
			_ = node.RecoverFromZonePeer(itemCount * 2)
		}
	}
	cluster.RunFor(10 * time.Second)

	got = 0
	var dups int64
	for _, node := range cluster.Nodes {
		if cluster.Net.Crashed(node.Addr()) {
			continue
		}
		got += node.Delivered()
		dups += node.Router().Stats().Duplicates
	}
	after := float64(got) / float64(want)

	return []string{
		fmtPct(phi),
		fmt.Sprint(k),
		fmtPct(before),
		fmtPct(after),
		fmtI(dups),
	}
}
