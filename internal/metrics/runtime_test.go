package metrics

import (
	"strings"
	"testing"
)

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.HeapInuseBytes == 0 {
		t.Error("HeapInuseBytes = 0; a running test binary has a live heap")
	}
	if rs.NumGoroutine < 1 {
		t.Errorf("NumGoroutine = %d", rs.NumGoroutine)
	}
	if rs.GCPauseP99Seconds < 0 || rs.GCPauseP99Seconds > 10 {
		t.Errorf("GCPauseP99Seconds = %v, implausible", rs.GCPauseP99Seconds)
	}
}

func TestCollectRuntimeExposition(t *testing.T) {
	reg := NewRegistry()
	rs := CollectRuntime(reg)
	if got := reg.Gauge("heap_inuse_bytes").Value(); got != float64(rs.HeapInuseBytes) {
		t.Errorf("heap_inuse_bytes gauge = %v, snapshot says %d", got, rs.HeapInuseBytes)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"heap_inuse_bytes", "heap_alloc_bytes", "num_goroutine",
		"gc_pause_p99_seconds", "gc_cycles_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition lacks %s:\n%s", name, out)
		}
	}
}
