package core

import (
	"time"

	"newswire/internal/wire"
	"testing"

	"newswire/internal/astrolabe"
)

func TestChooseZoneNilView(t *testing.T) {
	if _, err := ChooseZone(nil, 8); err == nil {
		t.Fatal("nil view accepted")
	}
}

func TestChooseZoneJoinsExistingLeafZone(t *testing.T) {
	// A flat cluster whose leaf zones have room: the joiner should be
	// placed into the least-populated leaf zone.
	c, err := NewCluster(ClusterConfig{N: 6, Branching: 4, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	c.RunRounds(6)

	// 6 nodes, branching 4 -> zones z00 (4 members) and z01 (2 members).
	zone, err := ChooseZone(c.Nodes[0].Agent(), 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range c.Nodes {
		counts[n.ZonePath()]++
	}
	if counts[zone] >= 4 {
		t.Fatalf("placed into full zone %s (members %d)", zone, counts[zone])
	}
	// It must be the emptiest one.
	for z, n := range counts {
		if n < counts[zone] {
			t.Fatalf("zone %s has %d members < chosen %s's %d", z, n, zone, counts[zone])
		}
	}
}

func TestChooseZoneProposesFreshSibling(t *testing.T) {
	// All leaf zones full but the parent has room: expect a new sibling
	// zone name that does not collide.
	c, err := NewCluster(ClusterConfig{N: 8, Branching: 4, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	c.RunRounds(6)
	// 8 nodes, branching 4 -> two full zones of 4 under the root, room
	// for more sibling zones.
	zone, err := ChooseZone(c.Nodes[0].Agent(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := astrolabe.ValidateZonePath(zone); err != nil {
		t.Fatalf("invalid placement %q: %v", zone, err)
	}
	for _, n := range c.Nodes {
		if n.ZonePath() == zone {
			t.Fatalf("expected a fresh zone, got existing %s", zone)
		}
	}
}

func TestChooseZonePlacementIsJoinable(t *testing.T) {
	// End to end: place a joiner, create it there, and verify it
	// integrates.
	c, err := NewCluster(ClusterConfig{N: 6, Branching: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	c.RunRounds(6)
	zone, err := ChooseZone(c.Nodes[0].Agent(), 4)
	if err != nil {
		t.Fatal(err)
	}

	var joiner *Node
	ep := c.Net.Attach("placed", func(m *wire.Message) { joiner.HandleMessage(m) })
	j, err := NewNode(Config{
		Name: "placed-node", ZonePath: zone, Transport: ep,
		Clock: c.Eng.Clock(), Rand: newTestRand(4321),
	})
	if err != nil {
		t.Fatal(err)
	}
	joiner = j
	joiner.Agent().MergeRows(c.Nodes[0].Agent().ChainRowUpdates())
	// Introduce to the placement zone's current representatives (if the
	// zone already exists) so its leaf table arrives before the joiner's
	// own partial aggregates can circulate.
	joiner.IntroduceTo(c.Nodes[0].ZoneRepresentatives(zone)...)
	c.Eng.RunFor(time.Second)

	for round := 0; round < 8; round++ {
		for _, n := range c.Nodes {
			n.Tick()
		}
		joiner.Tick()
		c.Eng.RunFor(2 * time.Second)
	}
	// The cluster's root tables now count the joiner.
	total := int64(0)
	rows, _ := c.Nodes[0].Agent().Table(astrolabe.RootZone)
	for _, r := range rows {
		n, _ := r.Attrs[astrolabe.AttrMembers].AsInt()
		total += n
	}
	if total != 7 {
		t.Fatalf("root member count = %d, want 7 after join", total)
	}
}
