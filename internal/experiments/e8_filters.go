package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/workload"
)

// RunE8 contrasts the Bloom-filter subscription summary with the
// attribute-per-subscription design §6 rejects: "having an attribute for
// each possible subscription would be poorly scalable because the work
// done for purposes of filtering would be at least linear in the number
// of subscriptions".
func RunE8(opt Options) *Table {
	subCounts := []int{16, 64, 256, 1024}
	if opt.Quick {
		subCounts = []int{16, 256}
	}
	t := &Table{
		ID:    "E8",
		Title: "Bloom filter vs. per-subscription attributes",
		Claim: "attribute-per-subscription is poorly scalable; Bloom replaces it (§6)",
		Columns: []string{"subscriptions", "mode", "root row attrs",
			"gossip KB/round/node", "ns/filter-op"},
	}

	const n = 48
	for _, subs := range subCounts {
		for _, mode := range []pubsub.Mode{pubsub.ModeBloom, pubsub.ModeAttributes} {
			t.AddRow(runE8Case(opt.Seed, n, subs, mode)...)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d nodes, each holding distinct subjects drawn from the pool; Bloom geometry %d bits",
			n, pubsub.DefaultGeometry.Bits))
	return t
}

func runE8Case(seed int64, n, subjectPool int, mode pubsub.Mode) []string {
	// Build the synthetic subject universe.
	pool := make([]string, subjectPool)
	for i := range pool {
		pool[i] = fmt.Sprintf("topic-%04d/sub", i)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 16, Seed: seed + int64(subjectPool) + int64(mode),
		Customize: func(i int, cfg *core.Config) {
			cfg.Mode = mode
		},
	})
	if err != nil {
		return []string{"error", err.Error(), "", "", ""}
	}
	rng := rand.New(rand.NewSource(seed + 80))
	for _, node := range cluster.Nodes {
		subs := workload.SampleSubscriptions(rng, pool, 4, 1.0)
		if err := node.Subscribe(subs...); err != nil {
			return []string{"error", err.Error(), "", "", ""}
		}
	}
	// Measure gossip volume over a fixed window after warm-up.
	cluster.RunRounds(6)
	_, _, _ = cluster.Net.Totals()
	startStats := make([]int64, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		startStats[i] = cluster.Net.Stats(node.Addr()).BytesSent
	}
	const windowRounds = 5
	cluster.RunRounds(windowRounds)
	var totalBytes int64
	for i, node := range cluster.Nodes {
		totalBytes += cluster.Net.Stats(node.Addr()).BytesSent - startStats[i]
	}
	kbPerRoundPerNode := float64(totalBytes) / 1024 / float64(windowRounds) / float64(n)

	// Root-row attribute counts (the gossip payload growth the paper
	// warns about).
	rows, _ := cluster.Nodes[0].Agent().Table(astrolabe.RootZone)
	maxAttrs := 0
	for _, r := range rows {
		if len(r.Attrs) > maxAttrs {
			maxAttrs = len(r.Attrs)
		}
	}

	// Per-forward filtering cost: time the forwarding filter against a
	// root row.
	env, _ := pubsub.EncodeItem(itemWithSubject(pool[0]), mode,
		pubsub.DefaultGeometry, nil)
	filter := pubsub.ForwardFilter(mode, pubsub.DefaultGeometry)
	var row astrolabe.Row
	if len(rows) > 0 {
		row = rows[0]
	}
	const reps = 20000
	startT := time.Now()
	for i := 0; i < reps; i++ {
		filter("/", row, &env)
	}
	perOp := time.Since(startT) / reps

	return []string{
		fmt.Sprint(subjectPool),
		mode.String(),
		fmt.Sprint(maxAttrs),
		fmt.Sprintf("%.1f", kbPerRoundPerNode),
		fmt.Sprint(perOp.Nanoseconds()),
	}
}

func itemWithSubject(subject string) *news.Item {
	return &news.Item{
		Publisher: "bench", ID: "probe", Headline: "probe", Body: "b",
		Subjects:  []string{subject},
		Published: time.Date(2002, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}
