package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"newswire"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-peers") {
		t.Errorf("missing -peers: err = %v", err)
	}
	if err := run([]string{"-peers", "x:1"}); err == nil || !strings.Contains(err.Error(), "-publisher") {
		t.Errorf("missing -publisher: err = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMissingSubjectAndHeadline(t *testing.T) {
	// Needs a live peer so StartLive's introduction has somewhere to go;
	// the validation under test happens after join.
	seed, err := newswire.StartLive(newswire.LiveConfig{
		Node: newswire.Config{ZonePath: "/default", GossipInterval: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()

	err = run([]string{"-peers", seed.Addr(), "-publisher", "p", "-settle", "100ms"})
	if err == nil || !strings.Contains(err.Error(), "-subject") {
		t.Errorf("missing subject/headline: err = %v", err)
	}
}

func TestRunPublishesRSSFile(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test")
	}
	received := make(chan string, 16)
	seed, err := newswire.StartLive(newswire.LiveConfig{
		Node: newswire.Config{
			ZonePath:       "/default",
			GossipInterval: 100 * time.Millisecond,
			OnItem: func(it *newswire.Item, env *newswire.ItemEnvelope) {
				received <- it.Headline
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if err := seed.Node().Subscribe("tech/linux"); err != nil {
		t.Fatal(err)
	}

	rss := `<rss version="2.0"><channel><title>T</title>
	  <item><title>CLI RSS story</title><guid>g1</guid>
	    <description>d</description><category>Linux</category></item>
	</channel></rss>`
	path := filepath.Join(t.TempDir(), "feed.xml")
	if err := os.WriteFile(path, []byte(rss), 0o644); err != nil {
		t.Fatal(err)
	}

	err = run([]string{
		"-peers", seed.Addr(),
		"-publisher", "slashdot",
		"-rss", path,
		"-settle", "1s",
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case headline := <-received:
		if headline != "CLI RSS story" {
			t.Fatalf("headline = %q", headline)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("item never delivered to the subscriber")
	}
}
