package metrics

import (
	"runtime"
	"sort"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime's memory and
// scheduler state — the footprint counters the big-run experiments watch
// (the 131k-node E1 run is memory-bound long before it is CPU-bound).
type RuntimeStats struct {
	// HeapInuseBytes is the heap memory in active use by live spans.
	HeapInuseBytes uint64 `json:"heapInuseBytes"`
	// HeapAllocBytes is the bytes of allocated, not-yet-freed objects.
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	// NumGoroutine is the current goroutine count.
	NumGoroutine int `json:"numGoroutine"`
	// GCPauseP99Seconds is the 99th-percentile stop-the-world pause over
	// the runtime's recent-pause ring (up to the last 256 GC cycles).
	GCPauseP99Seconds float64 `json:"gcPauseP99Seconds"`
	// NumGC is the cumulative completed GC cycle count.
	NumGC uint32 `json:"numGC"`
}

// ReadRuntime samples the runtime. It stops the world briefly
// (runtime.ReadMemStats), so callers should sample at display cadence,
// not per message.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		HeapInuseBytes:    ms.HeapInuse,
		HeapAllocBytes:    ms.HeapAlloc,
		NumGoroutine:      runtime.NumGoroutine(),
		GCPauseP99Seconds: pauseP99(&ms),
		NumGC:             ms.NumGC,
	}
}

// pauseP99 computes the 99th-percentile pause from MemStats' circular
// recent-pause buffer.
func pauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100 // ceil(0.99n), 1-based
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e9
}

// CollectRuntime samples the runtime and mirrors the snapshot into reg's
// gauges (heap_inuse_bytes, heap_alloc_bytes, num_goroutine,
// gc_pause_p99_seconds, gc_cycles_total), returning the snapshot so
// callers can also embed it in status documents.
func CollectRuntime(reg *Registry) RuntimeStats {
	rs := ReadRuntime()
	reg.Gauge("heap_inuse_bytes").Set(float64(rs.HeapInuseBytes))
	reg.Gauge("heap_alloc_bytes").Set(float64(rs.HeapAllocBytes))
	reg.Gauge("num_goroutine").Set(float64(rs.NumGoroutine))
	reg.Gauge("gc_pause_p99_seconds").Set(rs.GCPauseP99Seconds)
	reg.Gauge("gc_cycles_total").Set(float64(rs.NumGC))
	return rs
}
