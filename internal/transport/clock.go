package transport

import (
	"sync/atomic"
	"time"

	"newswire/internal/wire"
)

// defaultClockSyncInterval is the period between clock-offset probes to
// each connected peer. The first probe fires at connection establishment,
// so a fresh cluster has usable offsets within one round trip.
const defaultClockSyncInterval = 30 * time.Second

// maxClockRTT discards offset samples whose round trip was too slow to
// trust: a 5-second RTT puts ±2.5s of asymmetry noise on the estimate,
// worse than no correction at all.
const maxClockRTT = 5 * time.Second

// ClockOffset is one peer's estimated clock offset relative to this
// process: positive means the peer's wall clock runs ahead of ours. A
// remote timestamp t maps onto the local clock as t − Offset.
type ClockOffset struct {
	Offset time.Duration `json:"offset"`
	RTT    time.Duration `json:"rtt"`
	At     time.Time     `json:"at"` // local time the estimate was made
}

// estimateOffset computes the NTP-style offset of a peer's clock from one
// ping/pong exchange: t1 is the initiator's transmit time, t2 the
// responder's clock at receipt, t3 the initiator's receive time (all as
// observed by their respective clocks). The estimate is exact when the
// network path is symmetric; asymmetry contributes at most rtt/2 error.
func estimateOffset(t1, t2, t3 time.Time) (offset, rtt time.Duration) {
	rtt = t3.Sub(t1)
	offset = t2.Sub(t1) - rtt/2
	return offset, rtt
}

// clockSeq numbers outgoing pings so stale pongs are recognizable.
var clockSeq atomic.Uint64

// sendClockPing probes to's clock through the normal send path. The
// transmit stamp is taken at enqueue, so queueing delay lands in the RTT
// (splitting evenly across both directions, as the estimator assumes).
func (t *TCP) sendClockPing(to string) {
	_ = t.Send(to, &wire.Message{
		Kind: wire.KindClockPing,
		ClockSync: &wire.ClockSync{
			Seq: clockSeq.Add(1),
			T1:  time.Now().UnixNano(),
		},
	})
}

// clockLoop refreshes every connected peer's offset estimate each
// interval, so drifting clocks do not fossilize a connect-time estimate.
func (t *TCP) clockLoop() {
	defer t.wg.Done()
	interval := t.opts.ClockSyncInterval
	if interval <= 0 {
		interval = defaultClockSyncInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
		}
		t.mu.Lock()
		addrs := make([]string, 0, len(t.peers)+len(t.conns))
		for addr := range t.peers {
			addrs = append(addrs, addr)
		}
		for addr := range t.conns {
			addrs = append(addrs, addr)
		}
		t.mu.Unlock()
		for _, addr := range addrs {
			t.sendClockPing(addr)
		}
	}
}

// handleClockPing answers a peer's probe with our clock reading. Called
// from readLoop; the reply rides the normal outbound queue.
func (t *TCP) handleClockPing(from string, cs *wire.ClockSync) {
	if from == "" {
		return
	}
	reply := *cs
	reply.T2 = time.Now().UnixNano()
	_ = t.Send(from, &wire.Message{Kind: wire.KindClockPong, ClockSync: &reply})
}

// handleClockPong folds a probe reply into the peer's offset estimate,
// discarding samples whose round trip is too noisy to improve it.
func (t *TCP) handleClockPong(from string, cs *wire.ClockSync, now time.Time) {
	if from == "" || cs.T1 == 0 || cs.T2 == 0 {
		return
	}
	offset, rtt := estimateOffset(time.Unix(0, cs.T1), time.Unix(0, cs.T2), now)
	if rtt < 0 || rtt > maxClockRTT {
		return
	}
	t.clockMu.Lock()
	if t.clockOffsets == nil {
		t.clockOffsets = make(map[string]ClockOffset)
	}
	t.clockOffsets[from] = ClockOffset{Offset: offset, RTT: rtt, At: now}
	t.clockMu.Unlock()
}

// ClockOffsets returns a snapshot of the per-peer clock-offset estimates,
// keyed by peer listen address.
func (t *TCP) ClockOffsets() map[string]ClockOffset {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	out := make(map[string]ClockOffset, len(t.clockOffsets))
	for addr, e := range t.clockOffsets {
		out[addr] = e
	}
	return out
}

// ClockOffset returns the current offset estimate for one peer.
func (t *TCP) ClockOffset(addr string) (ClockOffset, bool) {
	t.clockMu.Lock()
	defer t.clockMu.Unlock()
	e, ok := t.clockOffsets[addr]
	return e, ok
}
