package experiments

import (
	"fmt"
	"time"

	"newswire/internal/baseline"
	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/vtime"
)

// RunE5 reproduces the overload story of §1 ("Internet news sites become
// completely useless under overload, failing even to service a small
// percentage of the visitors") and the abstract's claim that NewsWire
// "guarantees delivery even in the face of publisher overload or denial
// of service attacks".
func RunE5(opt Options) *Table {
	multipliers := []float64{1, 10, 100}
	t := &Table{
		ID:    "E5",
		Title: "flash-crowd overload: pull site vs. NewsWire",
		Claim: "pull sites fail under flash crowds; NewsWire keeps delivering (§1, §Abstract)",
		Columns: []string{"demand", "pull served", "nw delivered",
			"nw flood delivered", "nw flood denied"},
	}

	const (
		readers     = 200
		capacityRPS = 50 // the site serves 50 requests/second
		window      = 10 * time.Second
	)
	n := 128
	if opt.Quick {
		n = 64
	}

	for _, f := range multipliers {
		// --- Pull baseline: readers all rush the site in one window ---
		clock := vtime.NewVirtual()
		server, err := baseline.NewPullServer(clock, 15, capacityRPS)
		if err != nil {
			t.Notes = append(t.Notes, "server error: "+err.Error())
			return t
		}
		server.Publish(&news.Item{
			Publisher: "site", ID: "breaking", Headline: "breaking",
			Body: "big story", Subjects: []string{"world/americas"},
			Published: clock.Now(),
		})
		requests := int(float64(readers) * f)
		served := 0
		// Requests spread evenly over the window.
		gap := window / time.Duration(requests)
		for i := 0; i < requests; i++ {
			clock.Advance(gap)
			if server.Visit(baseline.NewReader(), baseline.FetchFull) {
				served++
			}
		}
		pullServed := float64(served) / float64(requests)

		// --- NewsWire under the same event: a rogue publisher floods
		// f×base items while a legitimate publisher keeps publishing.
		// Per-publisher admission control at forwarders bounds the flood
		// without touching legitimate traffic. ---
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: n, Branching: 16, Seed: opt.Seed + int64(f),
			Customize: func(i int, cfg *core.Config) {
				cfg.PublishRate = 2 // each forwarder admits 2 items/s/publisher
				cfg.PublishBurst = 10
				// Bimodal repair recovers copies lost to link loss.
				cfg.AntiEntropyEvery = 3
				cfg.AntiEntropyWindow = 5 * time.Minute
			},
		})
		if err != nil {
			t.Notes = append(t.Notes, "cluster error: "+err.Error())
			return t
		}
		for _, node := range cluster.Nodes {
			_ = node.Subscribe("world/americas")
		}
		cluster.RunRounds(10)

		const legitItems = 10
		floodItems := int(10 * f)
		publishStart := cluster.Eng.Now()
		for i := 0; i < floodItems; i++ {
			it := &news.Item{
				Publisher: "flooder", ID: fmt.Sprintf("junk-%d", i),
				Headline: "junk", Body: "junk",
				Subjects:  []string{"world/americas"},
				Published: publishStart,
			}
			// The flooder bypasses its own admission by injecting at a
			// node without local rate limiting? No: it publishes from
			// node 1 and is clipped there and at every forwarder.
			_ = cluster.Nodes[1].PublishItem(it, "", "")
			cluster.RunFor(50 * time.Millisecond)
		}
		for i := 0; i < legitItems; i++ {
			it := &news.Item{
				Publisher: "reuters", ID: fmt.Sprintf("real-%d", i),
				Headline: "real", Body: "real",
				Subjects:  []string{"world/americas"},
				Published: cluster.Eng.Now(),
			}
			_ = cluster.Nodes[0].PublishItem(it, "", "")
			cluster.RunFor(time.Second)
		}
		cluster.RunFor(30 * time.Second)
		// A few gossip rounds so the background anti-entropy runs.
		cluster.RunRounds(8)

		// Count per-node deliveries of legit vs flood items.
		var legitDelivered, floodDelivered, floodDenied int64
		for _, node := range cluster.Nodes {
			for i := 0; i < legitItems; i++ {
				if node.Cache().Has(fmt.Sprintf("reuters/real-%d#0", i)) {
					legitDelivered++
				}
			}
			for i := 0; i < floodItems; i++ {
				if node.Cache().Has(fmt.Sprintf("flooder/junk-%d#0", i)) {
					floodDelivered++
				}
			}
			floodDenied += node.DeniedPublications("flooder")
		}
		legitFrac := float64(legitDelivered) / float64(int64(legitItems)*int64(n))
		floodFrac := float64(floodDelivered) / float64(int64(floodItems)*int64(n))

		t.AddRow(
			fmt.Sprintf("%.0fx", f),
			fmtPct(pullServed),
			fmtPct(legitFrac),
			fmtPct(floodFrac),
			fmtI(floodDenied),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("pull site capacity %d req/s, %d base readers in a %v window", capacityRPS, readers, window),
		fmt.Sprintf("NewsWire: %d nodes, per-publisher admission 2 items/s (burst 10) at every forwarder", n))
	return t
}
