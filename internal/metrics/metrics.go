// Package metrics provides the lightweight counters, gauges and histograms
// that the experiment harness uses to report the quantities the paper talks
// about: delivery latency percentiles, per-node message loads, redundancy
// fractions, and served-request ratios — and, since the observability PR,
// the live-node exposition layer: labeled series and a Prometheus
// text-format handler (expo.go) that cmd/newswired serves as /metrics.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// SyncTo raises the counter to total if it is currently below it, and
// otherwise leaves it unchanged. It mirrors an externally maintained
// cumulative total (for example astrolabe.Stats) into the registry
// without double counting, while keeping the counter monotone.
func (c *Counter) SyncTo(total int64) {
	c.mu.Lock()
	if total > c.n {
		c.n = total
	}
	c.mu.Unlock()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations and reports order statistics.
//
// By default it keeps every sample: experiment runs are bounded, so exact
// quantiles are cheap and avoid approximation arguments in
// EXPERIMENTS.md. A long-running live node must not keep every delivery
// latency forever, though — SetReservoir caps the retained samples with
// uniform reservoir sampling (Vitter's algorithm R). Count, Sum, Mean,
// Min and Max stay exact in either mode; quantiles become estimates over
// the reservoir once it overflows.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool

	count int64
	sum   float64
	min   float64
	max   float64

	cap int        // 0 = unbounded (exact mode)
	rng *rand.Rand // reservoir replacement; lazily created, fixed seed
}

// SetReservoir bounds the retained sample buffer to cap samples (<= 0
// restores the unbounded exact mode). Samples already held beyond the cap
// are trimmed oldest-first.
func (h *Histogram) SetReservoir(cap int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cap <= 0 {
		h.cap = 0
		return
	}
	h.cap = cap
	if len(h.samples) > cap {
		h.samples = h.samples[len(h.samples)-cap:]
		h.sorted = false
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.cap > 0 && len(h.samples) >= h.cap {
		// Reservoir replacement keeps each of the count samples retained
		// with equal probability cap/count. The RNG seed is fixed: the
		// histogram's statistical behaviour must not depend on ambient
		// state, and capped histograms are a live-mode feature anyway.
		if h.rng == nil {
			h.rng = rand.New(rand.NewSource(1))
		}
		if j := h.rng.Int63n(h.count); j < int64(h.cap) {
			h.samples[j] = v
			h.sorted = false
		}
	} else {
		h.samples = append(h.samples, v)
		h.sorted = false
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (exact even with a reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the sum of all observations (exact even with a reservoir).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the observation mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted retained samples, or 0 for an empty histogram. Exact in the
// default mode; a reservoir estimate after a capped histogram overflows.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Max returns the largest observation, or 0 for an empty histogram.
// Exact even when a reservoir has discarded the sample itself.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation, or 0 for an empty histogram.
// Exact even when a reservoir has discarded the sample itself.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Reset discards all state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
}

// snapshot returns the fields a renderer needs in one critical section.
func (h *Histogram) snapshot() (count int64, mean, p50, p99, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	count = h.count
	if count > 0 {
		mean = h.sum / float64(count)
		min, max = h.min, h.max
	}
	p50 = h.quantileLocked(0.5)
	p99 = h.quantileLocked(0.99)
	return
}

// Registry is a named collection of metrics. The zero value is unusable;
// construct with NewRegistry.
//
// Series may carry labels (CounterWith and friends); the plain accessors
// are the empty-label special case. The registry lock only guards the
// series maps — per-metric work (quantile sorts in particular) happens
// under the individual metric's lock, so a Snapshot or exposition render
// in flight never stalls a concurrent Counter() lookup on a hot path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]seriesMeta // series key -> family/labels
}

// seriesMeta locates a series inside its family for exposition.
type seriesMeta struct {
	family string
	labels string // pre-rendered `k1="v1",k2="v2"`, "" when unlabeled
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		meta:       make(map[string]seriesMeta),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	return r.CounterWith(name)
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	return r.GaugeWith(name)
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name)
}

// RegisterHistogram adopts an externally owned histogram under name, so a
// component that already maintains one (for example a node's delivery
// latency reservoir) can surface it through the registry without copying
// samples. Re-registering the same instance is a no-op; a different
// instance replaces the previous one.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	key, meta := seriesKey(name, nil)
	r.mu.Lock()
	r.histograms[key] = h
	r.meta[key] = meta
	r.mu.Unlock()
}

// Snapshot renders every metric as "name value" lines sorted by name, for
// debugging experiment runs. Values are read under each metric's own
// lock, after the registry lock is released.
func (r *Registry) Snapshot() string {
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		g    *Gauge
	}
	type namedHistogram struct {
		name string
		h    *Histogram
	}
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for key, c := range r.counters {
		counters = append(counters, namedCounter{r.displayName(key), c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for key, g := range r.gauges {
		gauges = append(gauges, namedGauge{r.displayName(key), g})
	}
	histograms := make([]namedHistogram, 0, len(r.histograms))
	for key, h := range r.histograms {
		histograms = append(histograms, namedHistogram{r.displayName(key), h})
	}
	r.mu.Unlock()

	var lines []string
	for _, nc := range counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", nc.name, nc.c.Value()))
	}
	for _, ng := range gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", ng.name, ng.g.Value()))
	}
	for _, nh := range histograms {
		count, mean, p50, p99, min, max := nh.h.snapshot()
		lines = append(lines, fmt.Sprintf(
			"histogram %s count=%d mean=%g min=%g p50=%g p99=%g max=%g",
			nh.name, count, mean, min, p50, p99, max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// displayName renders a series key for Snapshot. Called with r.mu held.
func (r *Registry) displayName(key string) string {
	m := r.meta[key]
	if m.labels == "" {
		return m.family
	}
	return m.family + "{" + m.labels + "}"
}
