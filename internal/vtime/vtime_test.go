package vtime

import (
	"testing"
	"time"
)

func TestRealNowIsMonotonicEnough(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(5 * time.Second)
	want := Epoch.Add(5 * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	v.Advance(250 * time.Millisecond)
	want = want.Add(250 * time.Millisecond)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Second)
	before := v.Now()
	v.Advance(-time.Hour)
	if got := v.Now(); !got.Equal(before) {
		t.Fatalf("negative advance moved the clock: %v -> %v", before, got)
	}
}

func TestVirtualSetNow(t *testing.T) {
	v := NewVirtual()
	target := Epoch.Add(42 * time.Second)
	v.SetNow(target)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
	// Backwards set is ignored.
	v.SetNow(Epoch)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("backwards SetNow moved the clock to %v", got)
	}
}

func TestNewVirtualAt(t *testing.T) {
	start := time.Date(2001, time.September, 11, 8, 46, 0, 0, time.UTC)
	v := NewVirtualAt(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}
