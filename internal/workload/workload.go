// Package workload generates the synthetic news workloads the experiments
// run against, parameterized to the numbers the paper cites (§1): a
// Slashdot-like community site with a front page of recent articles,
// ~1M hits/day, and returning readers who revisit several times a day; and
// wire-service publishers (Reuters/AP-style) with Poisson article
// arrivals, Zipf-popular subjects and occasional revisions.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"newswire/internal/news"
)

// PublisherProfile describes one synthetic news source.
type PublisherProfile struct {
	// Name is the publisher identifier.
	Name string
	// ArticlesPerHour is the mean Poisson arrival rate.
	ArticlesPerHour float64
	// Subjects is the pool the generator draws article subjects from
	// (Zipf-weighted: earlier subjects are more popular).
	Subjects []string
	// MeanBodyBytes sizes article bodies (exponential around the mean).
	MeanBodyBytes int
	// RevisionProb is the chance an article later receives a revision.
	RevisionProb float64
}

// SlashdotProfile models the paper's running example: a community tech
// site posting a few dozen stories per day.
func SlashdotProfile() PublisherProfile {
	return PublisherProfile{
		Name:            "slashdot",
		ArticlesPerHour: 1.0, // ~24 stories/day, 2002-era Slashdot
		Subjects:        news.SubjectsByPrefix("tech"),
		MeanBodyBytes:   2500,
		RevisionProb:    0.15,
	}
}

// WireServiceProfile models a high-volume general news wire.
func WireServiceProfile(name string) PublisherProfile {
	return PublisherProfile{
		Name:            name,
		ArticlesPerHour: 25,
		Subjects:        news.StandardSubjects,
		MeanBodyBytes:   1800,
		RevisionProb:    0.3,
	}
}

// ArticleGen produces a deterministic stream of items for one publisher.
type ArticleGen struct {
	profile PublisherProfile
	rng     *rand.Rand
	seq     int
	pending []*news.Item // articles that will receive revisions
}

// NewArticleGen returns a generator seeded by rng.
func NewArticleGen(profile PublisherProfile, rng *rand.Rand) (*ArticleGen, error) {
	if profile.Name == "" {
		return nil, fmt.Errorf("workload: publisher name required")
	}
	if len(profile.Subjects) == 0 {
		return nil, fmt.Errorf("workload: publisher %q has no subjects", profile.Name)
	}
	if profile.ArticlesPerHour <= 0 {
		return nil, fmt.Errorf("workload: non-positive article rate")
	}
	if profile.MeanBodyBytes <= 0 {
		profile.MeanBodyBytes = 2000
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: rng required")
	}
	return &ArticleGen{profile: profile, rng: rng}, nil
}

// NextDelay samples the Poisson inter-arrival gap to the next article.
func (g *ArticleGen) NextDelay() time.Duration {
	perSecond := g.profile.ArticlesPerHour / 3600
	seconds := g.rng.ExpFloat64() / perSecond
	return time.Duration(seconds * float64(time.Second))
}

// Next produces the next item (possibly a revision of an earlier one)
// published at the given instant.
func (g *ArticleGen) Next(now time.Time) *news.Item {
	// Occasionally emit a revision of a pending article instead of a new
	// story.
	if len(g.pending) > 0 && g.rng.Float64() < 0.5 {
		it := g.pending[0]
		g.pending = g.pending[1:]
		rev := *it
		rev.Revision++
		rev.Body = rev.Body + "\n[updated]"
		rev.Published = now
		return &rev
	}
	g.seq++
	subject := g.profile.Subjects[ZipfIndex(g.rng, len(g.profile.Subjects), 1.2)]
	bodyLen := int(g.rng.ExpFloat64() * float64(g.profile.MeanBodyBytes))
	if bodyLen < 200 {
		bodyLen = 200
	}
	it := &news.Item{
		Publisher: g.profile.Name,
		ID:        fmt.Sprintf("art-%06d", g.seq),
		Revision:  0,
		Headline:  fmt.Sprintf("%s story %d about %s", g.profile.Name, g.seq, subject),
		Byline:    "By Staff Writer",
		Abstract:  fmt.Sprintf("Abstract of story %d.", g.seq),
		Body:      strings.Repeat("x", bodyLen),
		Subjects:  []string{subject},
		Urgency:   1 + g.rng.Intn(8),
		Published: now,
	}
	if strings.HasPrefix(subject, "world/") {
		it.Geography = strings.TrimPrefix(subject, "world/")
	}
	if g.rng.Float64() < g.profile.RevisionProb {
		g.pending = append(g.pending, it)
	}
	return it
}

// ZipfIndex samples an index in [0, n) with Zipf(s) weights (index 0 most
// popular). Implemented directly so the exponent can be < 1 or arbitrary,
// unlike math/rand's Zipf.
func ZipfIndex(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over the normalized harmonic weights.
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	target := rng.Float64() * total
	var cum float64
	for i := 1; i <= n; i++ {
		cum += 1 / math.Pow(float64(i), s)
		if cum >= target {
			return i - 1
		}
	}
	return n - 1
}

// SampleSubscriptions draws count distinct subjects for one subscriber,
// Zipf-weighted over the pool, modelling the skewed interest distribution
// of real audiences.
func SampleSubscriptions(rng *rand.Rand, pool []string, count int, s float64) []string {
	if count >= len(pool) {
		out := make([]string, len(pool))
		copy(out, pool)
		return out
	}
	chosen := make(map[int]bool, count)
	out := make([]string, 0, count)
	for len(out) < count {
		idx := ZipfIndex(rng, len(pool), s)
		if chosen[idx] {
			continue
		}
		chosen[idx] = true
		out = append(out, pool[idx])
	}
	return out
}

// ReaderProfile models a returning pull-model reader (§1: "a consumer who
// returns 4 times during a day receives about 70% redundant data").
type ReaderProfile struct {
	// VisitsPerDay is how often the reader pulls the site.
	VisitsPerDay int
}

// VisitTimes spreads the reader's visits evenly over one day starting at
// dayStart, with jitter so readers do not synchronize.
func (r ReaderProfile) VisitTimes(rng *rand.Rand, dayStart time.Time) []time.Time {
	if r.VisitsPerDay <= 0 {
		return nil
	}
	interval := 24 * time.Hour / time.Duration(r.VisitsPerDay)
	out := make([]time.Time, 0, r.VisitsPerDay)
	for i := 0; i < r.VisitsPerDay; i++ {
		jitter := time.Duration(rng.Int63n(int64(interval / 2)))
		out = append(out, dayStart.Add(time.Duration(i)*interval+jitter))
	}
	return out
}

// FlashCrowd scales a base request rate by a multiplier during an event
// window — the September-2001-style overload scenario of §1.
type FlashCrowd struct {
	Start      time.Time
	Duration   time.Duration
	Multiplier float64
}

// RateAt returns the effective request rate at instant t given the base
// rate.
func (f FlashCrowd) RateAt(t time.Time, base float64) float64 {
	if f.Multiplier <= 1 {
		return base
	}
	if t.Before(f.Start) || t.After(f.Start.Add(f.Duration)) {
		return base
	}
	return base * f.Multiplier
}

// DayOfArticles generates one day's article stream starting at dayStart,
// with Poisson inter-arrival gaps, in publication order.
func (g *ArticleGen) DayOfArticles(dayStart time.Time) []*news.Item {
	var out []*news.Item
	at := dayStart.Add(g.NextDelay())
	end := dayStart.Add(24 * time.Hour)
	for at.Before(end) {
		out = append(out, g.Next(at))
		at = at.Add(g.NextDelay())
	}
	return out
}
