package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"newswire/internal/core"
	"newswire/internal/metrics"
	"newswire/internal/multicast"
	"newswire/internal/news"
	"newswire/internal/sim"
	"newswire/internal/sqlagg"
	"newswire/internal/wire"
)

// RunA1 compares forwarding-queue drain strategies (§9: "The best strategy
// to fill queues is still under research. We are experimenting with
// weighted round-robin strategies, as well as some more aggressive
// techniques").
func RunA1(opt Options) *Table {
	t := &Table{
		ID:    "A1",
		Title: "forwarding queue strategies under constrained egress",
		Claim: "queue strategy choice is an open design question (§9)",
		Columns: []string{"strategy", "urgent p50 wait", "urgent p99 wait",
			"routine p50 wait", "drops"},
	}
	for _, strategy := range []multicast.Strategy{
		multicast.FIFO, multicast.WeightedRoundRobin, multicast.UrgencyFirst,
	} {
		t.AddRow(runA1Strategy(opt.Seed, strategy)...)
	}
	t.Notes = append(t.Notes,
		"one forwarder, 3 child destinations, 600 items (10% urgent), egress 20 msgs/s, offered 60 msgs/s burst")
	return t
}

func runA1Strategy(seed int64, strategy multicast.Strategy) []string {
	eng := sim.NewEngine(seed + int64(strategy))
	net := sim.NewNetwork(eng, sim.LinkModel{})
	ep := net.Attach("fwd", nil)

	type pending struct {
		urgent   bool
		enqueued time.Time
	}
	inflight := make(map[string]pending)
	urgentWait := &metrics.Histogram{}
	routineWait := &metrics.Histogram{}
	for _, dest := range []string{"d1", "d2", "d3"} {
		dest := dest
		net.Attach(dest, func(m *wire.Message) {
			key := m.Multicast.Envelope.Key()
			p, ok := inflight[key]
			if !ok {
				return
			}
			wait := eng.Now().Sub(p.enqueued).Seconds()
			if p.urgent {
				urgentWait.Observe(wait)
			} else {
				routineWait.Observe(wait)
			}
		})
	}

	q, err := multicast.NewForwardQueue(ep, strategy, 1000)
	if err != nil {
		return []string{"error", err.Error(), "", "", ""}
	}

	// Offered load: bursts of 3 items every 50ms (60/s) for 10s; egress
	// drains 1 item every 50ms (20/s).
	rng := rand.New(rand.NewSource(seed + 5))
	seq := 0
	producer := eng.Every(50*time.Millisecond, 0, func() {
		for b := 0; b < 3; b++ {
			seq++
			urgent := rng.Float64() < 0.1
			urg := 8
			if urgent {
				urg = 1
			}
			dest := []string{"d1", "d2", "d3"}[seq%3]
			msg := &wire.Message{
				Kind: wire.KindMulticast,
				Multicast: &wire.Multicast{
					TargetZone: "/x",
					Envelope: wire.ItemEnvelope{
						Publisher: "p", ItemID: fmt.Sprintf("i%d", seq),
						Urgency: urg,
					},
				},
			}
			inflight[msg.Multicast.Envelope.Key()] = pending{urgent: urgent, enqueued: eng.Now()}
			_ = q.Enqueue(dest, msg)
		}
	})
	drainer := eng.Every(50*time.Millisecond, 0, func() { q.Drain(1) })

	eng.RunFor(10 * time.Second)
	producer.Stop()
	// Keep draining until empty.
	eng.RunFor(30 * time.Second)
	drainer.Stop()
	eng.RunUntilIdle(0)

	_, drops := q.Counters()
	return []string{
		strategy.String(),
		fmtMS(urgentWait.Quantile(0.5)),
		fmtMS(urgentWait.Quantile(0.99)),
		fmtMS(routineWait.Quantile(0.5)),
		fmtI(drops),
	}
}

// RunA2 compares representative-election policies (§5: representatives
// are elected by "an aggregation function that combines the local
// knowledge of availability of independent network paths to a node, the
// load on those paths and the load on each node").
func RunA2(opt Options) *Table {
	t := &Table{
		ID:    "A2",
		Title: "representative election: min-load vs. random",
		Claim: "load-aware election spreads forwarding away from loaded nodes (§5)",
		Columns: []string{"policy", "fwd by loaded nodes", "fwd by others",
			"loaded-node share"},
	}
	policies := map[string]*sqlagg.Program{
		"min-load": nil, // default aggregation
		"random": sqlagg.MustParse(`SELECT
			SUM(COALESCE(nmembers, 1)) AS nmembers,
			REPS(3, HASH(addr), COALESCE(reps, addr)) AS reps,
			MINV(HASH(addr), addr) AS addr,
			MIN(load) AS load,
			BIT_OR(subs) AS subs,
			UNION(pubs) AS pubs`),
	}
	for _, name := range []string{"min-load", "random"} {
		t.AddRow(runA2Policy(opt.Seed, name, policies[name])...)
	}
	t.Notes = append(t.Notes,
		"64 nodes; one third advertise load 0.9 (loaded), the rest 0.1; 20 items published")
	return t
}

func runA2Policy(seed int64, name string, aggr *sqlagg.Program) []string {
	const n = 64
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 8, Seed: seed + 31,
		Customize: func(i int, cfg *core.Config) {
			cfg.Aggregation = aggr
		},
	})
	if err != nil {
		return []string{name, "error", err.Error(), ""}
	}
	loaded := make(map[string]bool)
	for i, node := range cluster.Nodes {
		_ = node.Subscribe("business/economy")
		if i%3 == 0 {
			node.SetLoad(0.9)
			loaded[node.Addr()] = true
		} else {
			node.SetLoad(0.1)
		}
	}
	cluster.RunRounds(10)

	for i := 0; i < 20; i++ {
		it := &news.Item{
			Publisher: "reuters", ID: fmt.Sprintf("a2-%d", i),
			Headline: "x", Body: "y", Subjects: []string{"business/economy"},
			Published: cluster.Eng.Now(),
		}
		_ = cluster.Nodes[i%n].PublishItem(it, "", "")
		cluster.RunFor(time.Second)
	}
	cluster.RunFor(10 * time.Second)

	var loadedFwd, otherFwd int64
	for _, node := range cluster.Nodes {
		f := node.Router().Stats().Forwarded
		if loaded[node.Addr()] {
			loadedFwd += f
		} else {
			otherFwd += f
		}
	}
	share := float64(loadedFwd) / float64(loadedFwd+otherFwd)
	return []string{name, fmtI(loadedFwd), fmtI(otherFwd), fmtPct(share)}
}

// RunA3 measures the traffic saved by publishing into a sub-zone instead
// of the root (§8: "A publisher is able to restrict the scope of the
// dissemination ... for example allows the publisher to disseminate
// localized news items in Asia").
func RunA3(opt Options) *Table {
	t := &Table{
		ID:    "A3",
		Title: "publication scope: root vs. regional zone",
		Claim: "zone scoping contains dissemination traffic (§8)",
		Columns: []string{"scope", "deliveries", "multicast msgs",
			"msgs/delivery"},
	}
	const n = 96
	for _, scope := range []string{"/", "regional"} {
		t.AddRow(runA3Scope(opt.Seed, n, scope)...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d nodes; all subscribe; 'regional' scopes to the first top-level zone", n))
	return t
}

func runA3Scope(seed int64, n int, scope string) []string {
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 8, Seed: seed + 77,
	})
	if err != nil {
		return []string{scope, "error", err.Error(), ""}
	}
	for _, node := range cluster.Nodes {
		_ = node.Subscribe("world/asia")
	}
	cluster.RunRounds(10)

	target := scope
	if scope == "regional" {
		// The first top-level zone on the publisher's chain.
		target = cluster.Nodes[0].Agent().Chain()[1]
	}
	it := &news.Item{
		Publisher: "reuters", ID: "scoped", Headline: "x", Body: "y",
		Subjects: []string{"world/asia"}, Geography: "asia",
		Published: cluster.Eng.Now(),
	}
	if err := cluster.Nodes[0].PublishItem(it, target, ""); err != nil {
		return []string{scope, "error", err.Error(), ""}
	}
	cluster.RunFor(20 * time.Second)

	var delivered, forwarded int64
	for _, node := range cluster.Nodes {
		delivered += node.Delivered()
		forwarded += node.Router().Stats().Forwarded
	}
	per := "n/a"
	if delivered > 0 {
		per = fmtF(float64(forwarded) / float64(delivered))
	}
	return []string{scope, fmtI(delivered), fmtI(forwarded), per}
}

// RunA4 sweeps gossip fanout — the robustness/traffic trade-off of the
// epidemic substrate.
func RunA4(opt Options) *Table {
	t := &Table{
		ID:      "A4",
		Title:   "gossip fanout vs. convergence and traffic",
		Claim:   "epidemic parameters trade bandwidth for convergence speed (§3)",
		Columns: []string{"fanout", "rounds to converge", "msgs/node/round"},
	}
	for _, fanout := range []int{1, 2, 3} {
		t.AddRow(runA4Fanout(opt.Seed, fanout)...)
	}
	t.Notes = append(t.Notes, "128 nodes, branching 16; convergence = new subscription visible in every node's root table")
	return t
}

func runA4Fanout(seed int64, fanout int) []string {
	const n = 128
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, Branching: 16, Seed: seed + int64(fanout)*13,
		Customize: func(i int, cfg *core.Config) {
			cfg.Fanout = fanout
		},
	})
	if err != nil {
		return []string{fmt.Sprint(fanout), "error", err.Error()}
	}
	cluster.RunRounds(6)

	sent0, _, _ := cluster.Net.Totals()
	subject := "culture/film"
	_ = cluster.Nodes[n/3].Subscribe(subject)

	rounds := convergenceRounds(cluster, subject, 200)
	sent1, _, _ := cluster.Net.Totals()
	roundsRun := rounds
	if roundsRun <= 0 {
		roundsRun = 200
	}
	msgsPerNodeRound := float64(sent1-sent0) / float64(n) / float64(roundsRun)

	r := "never"
	if rounds > 0 {
		r = fmt.Sprint(rounds)
	}
	return []string{fmt.Sprint(fanout), r, fmtF(msgsPerNodeRound)}
}
