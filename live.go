package newswire

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"newswire/internal/core"
	"newswire/internal/trace"
	"newswire/internal/transport"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// Live-node observability defaults: a bounded span ring and a capped
// delivery-latency reservoir, so a node that runs for months holds
// constant memory no matter how many items flow through it.
const (
	defaultLiveTraceCap       = 4096
	defaultLiveLatencySamples = 8192
	// defaultLiveHealthEvery publishes the node's health digest every
	// this-many gossip ticks (10s at the default 2s interval).
	defaultLiveHealthEvery = 5
)

// LiveConfig configures a node that runs over real TCP with the wall
// clock (cmd/newswired).
type LiveConfig struct {
	// Node is the node configuration. Transport and Clock are filled in
	// by StartLive; Rand defaults to a time-seeded source if nil.
	Node Config
	// ListenAddr is the TCP address to listen on, e.g. "127.0.0.1:0".
	ListenAddr string
	// Peers are addresses of existing cluster members to bootstrap
	// membership from: the node requests their gossip by sending its own
	// chain rows, and normal anti-entropy does the rest.
	Peers []string
	// DisableTrace skips the default bounded span ring. By default a live
	// node records its last few thousand delivery spans (served by the
	// web interface's /trace.json); set Node.Tracer to override the
	// recorder instead.
	DisableTrace bool
	// DisableHealth turns off the self-monitoring plane. By default a
	// live node publishes its health digest into the gossip layer every
	// few ticks (Node.HealthEvery overrides the cadence) and samples its
	// heap, so any member can serve /cluster-health.json for the whole
	// cluster.
	DisableHealth bool
	// Transport tunes the TCP data path (per-peer queue length, write
	// timeout, the legacy synchronous-writes ablation). The zero value is
	// the recommended default.
	Transport transport.TCPOptions
}

// LiveNode is a running NewsWire node over TCP.
type LiveNode struct {
	node *core.Node
	tr   *transport.TCP
	ring *trace.Ring // nil when tracing is disabled or overridden

	stop chan struct{}
	done chan struct{}
}

// StartLive launches a node: TCP listener, message dispatch, and a gossip
// ticker. Call Close to shut it down.
func StartLive(cfg LiveConfig) (*LiveNode, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	var node *core.Node
	tr, err := transport.ListenTCPWith(cfg.ListenAddr, func(m *wire.Message) {
		if node != nil {
			node.HandleMessage(m)
		}
	}, cfg.Transport)
	if err != nil {
		return nil, err
	}

	nodeCfg := cfg.Node
	nodeCfg.Transport = tr
	nodeCfg.Clock = vtime.Real{}
	if nodeCfg.Rand == nil {
		nodeCfg.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	var ring *trace.Ring
	if nodeCfg.Tracer == nil && !cfg.DisableTrace {
		ring = trace.NewRing(defaultLiveTraceCap)
		nodeCfg.Tracer = ring
	}
	if nodeCfg.LatencyReservoir == 0 {
		nodeCfg.LatencyReservoir = defaultLiveLatencySamples
	}
	if cfg.DisableHealth {
		nodeCfg.HealthEvery = 0
	} else {
		if nodeCfg.HealthEvery <= 0 {
			nodeCfg.HealthEvery = defaultLiveHealthEvery
		}
		if nodeCfg.HealthHeapBytes == nil {
			nodeCfg.HealthHeapBytes = liveHeapInUse
		}
	}
	if nodeCfg.Name == "" {
		nodeCfg.Name = fmt.Sprintf("node-%s", tr.Addr())
	}
	if nodeCfg.ZonePath == "" {
		nodeCfg.ZonePath = "/default"
	}
	n, err := core.NewNode(nodeCfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	node = n

	ln := &LiveNode{
		node: n,
		tr:   tr,
		ring: ring,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}

	// Introduce ourselves to the seed peers: push our chain rows as a
	// gossip message; their replies bootstrap our replicas. Best effort;
	// the ticker keeps retrying through normal gossip.
	n.IntroduceTo(cfg.Peers...)

	interval := nodeCfg.GossipInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go ln.run(interval)
	return ln, nil
}

func (ln *LiveNode) run(interval time.Duration) {
	defer close(ln.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ln.node.Tick()
		case <-ln.stop:
			return
		}
	}
}

// liveHeapInUse samples the process's heap for the health digest. One
// ReadMemStats per health interval (seconds apart) is negligible.
func liveHeapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Node returns the underlying node for subscriptions and publishing.
func (ln *LiveNode) Node() *Node { return ln.node }

// Transport exposes the node's TCP transport (clock offsets, data-path
// stats).
func (ln *LiveNode) Transport() *transport.TCP { return ln.tr }

// TraceRing returns the node's span ring, or nil when tracing was
// disabled or replaced through Node.Tracer.
func (ln *LiveNode) TraceRing() *trace.Ring { return ln.ring }

// WebUI returns the node's web interface with the trace ring attached,
// so /trace.json serves the recorded spans.
func (ln *LiveNode) WebUI() *WebUI {
	ui := NewWebUI(ln.node)
	ui.ring = ln.ring
	return ui
}

// Addr returns the node's listen address (with the resolved port).
func (ln *LiveNode) Addr() string { return ln.tr.Addr() }

// Close stops the ticker and the transport and waits for shutdown.
func (ln *LiveNode) Close() error {
	close(ln.stop)
	<-ln.done
	return ln.tr.Close()
}
