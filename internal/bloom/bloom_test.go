package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	f := New(1024, 3)
	if f.Bits() != 1024 {
		t.Errorf("Bits() = %d, want 1024", f.Bits())
	}
	if f.Hashes() != 3 {
		t.Errorf("Hashes() = %d, want 3", f.Hashes())
	}
	if len(f.Bytes()) != 128 {
		t.Errorf("Bytes() length = %d, want 128", len(f.Bytes()))
	}
	// Non-byte-aligned sizes round up.
	g := New(10, 1)
	if len(g.Bytes()) != 2 {
		t.Errorf("10-bit filter has %d bytes, want 2", len(g.Bytes()))
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, args := range [][2]int{{0, 1}, {-5, 1}, {8, 0}, {8, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", args[0], args[1])
				}
			}()
			New(args[0], args[1])
		}()
	}
}

func TestAddTest(t *testing.T) {
	f := New(DefaultBits, DefaultHashes)
	keys := []string{"slashdot/linux", "reuters/asia", "nytimes/politics"}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Errorf("Test(%q) = false after Add (false negatives are forbidden)", k)
		}
	}
}

func TestNoFalseNegativesEver(t *testing.T) {
	f := New(512, 4)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		f.Add(k)
		if !f.Test(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestPositionsStableAndInRange(t *testing.T) {
	f := New(1000, 5)
	p1 := f.Positions("subject")
	p2 := f.Positions("subject")
	if len(p1) != 5 {
		t.Fatalf("got %d positions, want 5", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Positions is not deterministic")
		}
		if p1[i] >= 1000 {
			t.Fatalf("position %d out of range", p1[i])
		}
	}
	// Same key, independent filter object with same geometry: identical.
	g := New(1000, 5)
	p3 := g.Positions("subject")
	for i := range p1 {
		if p1[i] != p3[i] {
			t.Fatal("Positions differ across filter instances")
		}
	}
}

func TestPositionsForMatchesFilter(t *testing.T) {
	f := New(DefaultBits, 2)
	want := f.Positions("topic/x")
	got := PositionsFor("topic/x", DefaultBits, 2)
	if len(got) != len(want) {
		t.Fatalf("length mismatch %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("PositionsFor disagrees with Filter.Positions")
		}
	}
}

func TestTestPositions(t *testing.T) {
	f := New(256, 2)
	f.Add("present")
	if !f.TestPositions(f.Positions("present")) {
		t.Error("TestPositions false for present key")
	}
	if f.TestPositions([]uint32{9999}) {
		t.Error("out-of-range position should test false")
	}
	empty := New(256, 2)
	if empty.TestPositions(empty.Positions("anything")) {
		t.Error("empty filter should test false")
	}
}

func TestSetPosition(t *testing.T) {
	f := New(64, 1)
	f.SetPosition(10)
	if !f.TestPositions([]uint32{10}) {
		t.Error("SetPosition(10) not observable")
	}
	f.SetPosition(9999) // silently ignored
	if f.PopCount() != 1 {
		t.Errorf("PopCount = %d, want 1", f.PopCount())
	}
}

func TestMergeIsUnion(t *testing.T) {
	a := New(512, 2)
	b := New(512, 2)
	a.Add("only-a")
	b.Add("only-b")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test("only-a") || !a.Test("only-b") {
		t.Error("merged filter must contain both sides' keys")
	}
	if b.Test("only-a") {
		t.Error("Merge must not modify its argument")
	}
}

func TestMergeSizeMismatch(t *testing.T) {
	a := New(512, 2)
	b := New(256, 2)
	if err := a.Merge(b); err == nil {
		t.Error("merging different sizes should fail")
	}
	if err := a.MergeBytes(make([]byte, 10)); err == nil {
		t.Error("MergeBytes with wrong snapshot size should fail")
	}
}

func TestMergeBytesRoundTrip(t *testing.T) {
	a := New(512, 1)
	a.Add("x")
	snapshot := a.Bytes()

	b := New(512, 1)
	if err := b.MergeBytes(snapshot); err != nil {
		t.Fatal(err)
	}
	if !b.Test("x") {
		t.Error("MergeBytes lost key")
	}
}

func TestFromBytes(t *testing.T) {
	a := New(512, 3)
	a.Add("k")
	b, err := FromBytes(a.Bytes(), 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Test("k") {
		t.Error("FromBytes lost key")
	}
	if _, err := FromBytes(make([]byte, 3), 512, 3); err == nil {
		t.Error("FromBytes with wrong length should fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(128, 1)
	a.Add("x")
	b := a.Clone()
	b.Add("y")
	if a.Test("y") {
		t.Error("Clone aliases the original")
	}
	if !b.Test("x") {
		t.Error("Clone lost existing keys")
	}
}

func TestClearAndCounts(t *testing.T) {
	f := New(128, 1)
	if f.PopCount() != 0 || f.Density() != 0 {
		t.Error("fresh filter not empty")
	}
	f.Add("a")
	if f.PopCount() == 0 {
		t.Error("PopCount zero after Add")
	}
	f.Clear()
	if f.PopCount() != 0 {
		t.Error("Clear did not reset")
	}
}

func TestDensityAndFPRate(t *testing.T) {
	f := New(8, 1)
	for i := uint32(0); i < 4; i++ {
		f.SetPosition(i)
	}
	if d := f.Density(); d != 0.5 {
		t.Errorf("Density = %v, want 0.5", d)
	}
	if r := f.FalsePositiveRate(); r != 0.5 {
		t.Errorf("FalsePositiveRate = %v, want 0.5 with k=1", r)
	}
}

func TestExpectedFalsePositiveRate(t *testing.T) {
	if r := ExpectedFalsePositiveRate(1024, 1, 0); r != 0 {
		t.Errorf("empty filter expected rate = %v, want 0", r)
	}
	// Rate grows with insertions.
	r1 := ExpectedFalsePositiveRate(1024, 1, 100)
	r2 := ExpectedFalsePositiveRate(1024, 1, 1000)
	if !(r1 < r2) {
		t.Errorf("rate should grow with n: %v vs %v", r1, r2)
	}
	// And shrinks with more bits.
	r3 := ExpectedFalsePositiveRate(16384, 1, 1000)
	if !(r3 < r2) {
		t.Errorf("rate should shrink with m: %v vs %v", r3, r2)
	}
	if ExpectedFalsePositiveRate(0, 1, 10) != 0 {
		t.Error("degenerate geometry should return 0")
	}
}

func TestMeasuredFPRateNearTheory(t *testing.T) {
	const (
		m = 4096
		k = 1
		n = 500
	)
	f := New(m, k)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	rng := rand.New(rand.NewSource(42))
	falsePos := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if f.Test(fmt.Sprintf("absent-%d-%d", i, rng.Int())) {
			falsePos++
		}
	}
	measured := float64(falsePos) / trials
	expected := ExpectedFalsePositiveRate(m, k, n)
	if measured > expected*2+0.01 {
		t.Errorf("measured FP rate %v far above theoretical %v", measured, expected)
	}
}

func TestEncodeDecodePositions(t *testing.T) {
	in := []uint32{0, 1, 1023, 4095}
	out, err := DecodePositions(EncodePositions(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("position %d: %d != %d", i, out[i], in[i])
		}
	}
	if _, err := DecodePositions(nil); err == nil {
		t.Error("decoding empty input should fail")
	}
	if _, err := DecodePositions([]byte{5, 1}); err == nil {
		t.Error("truncated positions should fail")
	}
}

// Property: OR-merge is commutative — aggregating child filters in any order
// yields the same parent filter (required for Astrolabe's unordered gossip).
func TestQuickMergeCommutative(t *testing.T) {
	f := func(keysA, keysB []string) bool {
		a1, b1 := New(256, 2), New(256, 2)
		for _, k := range keysA {
			a1.Add(k)
		}
		for _, k := range keysB {
			b1.Add(k)
		}
		ab := a1.Clone()
		if ab.Merge(b1) != nil {
			return false
		}
		ba := b1.Clone()
		if ba.Merge(a1) != nil {
			return false
		}
		abBytes, baBytes := ab.Bytes(), ba.Bytes()
		for i := range abBytes {
			if abBytes[i] != baBytes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merge never loses membership (no false negatives post-merge).
func TestQuickMergePreservesMembership(t *testing.T) {
	f := func(keysA, keysB []string) bool {
		a, b := New(512, 3), New(512, 3)
		for _, k := range keysA {
			a.Add(k)
		}
		for _, k := range keysB {
			b.Add(k)
		}
		if a.Merge(b) != nil {
			return false
		}
		for _, k := range keysA {
			if !a.Test(k) {
				return false
			}
		}
		for _, k := range keysB {
			if !a.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: positions round-trip through the wire encoding.
func TestQuickPositionsRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		in := make([]uint32, len(raw))
		copy(in, raw)
		out, err := DecodePositions(EncodePositions(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
