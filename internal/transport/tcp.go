package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"newswire/internal/wire"
)

// maxFrame bounds a single message frame; anything larger is treated as a
// protocol violation and the connection is dropped.
const maxFrame = 16 << 20

// dialTimeout bounds outbound connection establishment.
const dialTimeout = 5 * time.Second

// TCP is a Transport over real sockets, for live multi-process clusters
// (cmd/newswired). Frames are 4-byte big-endian length prefixes followed
// by a gob-encoded wire.Message. Outbound connections are cached per peer
// and re-dialed on failure.
type TCP struct {
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	conns   map[string]net.Conn
	inbound map[net.Conn]bool
	closed  bool

	wg sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// ListenTCP starts an endpoint listening on addr (e.g. "127.0.0.1:0") and
// dispatching inbound messages to h.
func ListenTCP(addr string, h Handler) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		ln:      ln,
		handler: h,
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's concrete address (with the resolved port).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send implements Transport. It writes one frame on a cached connection to
// the peer, dialing on demand and retrying once on a stale connection.
func (t *TCP) Send(to string, msg *wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	t.mu.Unlock()

	if err := msg.Validate(); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	msg.From = t.Addr()
	data, err := wire.Encode(msg)
	if err != nil {
		return err
	}
	if len(data) > maxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", len(data))
	}

	if err := t.writeFrame(to, data); err != nil {
		// The cached connection may have gone stale; dial fresh and retry
		// once.
		t.dropConn(to)
		return t.writeFrame(to, data)
	}
	return nil
}

func (t *TCP) writeFrame(to string, data []byte) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	t.mu.Lock()
	defer t.mu.Unlock()
	// A peer that stops reading must not wedge every sender behind the
	// mutex: bound the write.
	_ = conn.SetWriteDeadline(time.Now().Add(dialTimeout))
	if _, err := conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("transport: write to %s: %w", to, err)
	}
	return nil
}

func (t *TCP) conn(to string) (net.Conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	c, err := net.DialTimeout("tcp", to, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, errors.New("transport: closed")
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the race; use the existing connection.
		c.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) dropConn(to string) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		c.Close()
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

// Close stops the listener, closes all connections and waits for the
// receive goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for to, c := range t.conns {
		c.Close()
		delete(t.conns, to)
	}
	// Inbound connections must be closed too, or their read goroutines
	// would block in ReadFull until the remote side goes away and
	// wg.Wait below would hang.
	for c := range t.inbound {
		c.Close()
		delete(t.inbound, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > maxFrame {
			return
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		msg, err := wire.Decode(data)
		if err != nil {
			// Malformed frame: drop the connection, not the process.
			return
		}
		t.handler(msg)
	}
}
