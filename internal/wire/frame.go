package wire

import (
	"encoding/binary"
	"fmt"
)

// FramePrefixLen is the size of the transport's length prefix: a 4-byte
// big-endian payload length precedes every encoded message on a TCP
// stream.
const FramePrefixLen = 4

// Frame is one message's immutable on-the-wire representation: the
// transport's length prefix followed by the codec payload, in a single
// contiguous allocation. Frames are shareable by reference — multicast
// fan-out encodes a message once and hands the same Frame to every
// peer's send queue, the same discipline SharedRow applies to gossiped
// rows. Nothing may mutate the underlying bytes after NewFrame returns.
type Frame struct {
	data []byte
}

// NewFrame validates and serializes m with the sender address stamped as
// from. The source Message is read, never written — stamping the sender
// into the frame instead of into msg.From is what makes concurrent
// fan-out of one shared *Message race-free.
func NewFrame(m *Message, from string) (Frame, error) {
	if err := m.Validate(); err != nil {
		return Frame{}, err
	}
	var data []byte
	var err error
	if gobFallback.Load() {
		data, err = encodeGob(m, from, FramePrefixLen)
	} else {
		data, err = encodeBinary(m, from, FramePrefixLen)
	}
	if err != nil {
		return Frame{}, err
	}
	n := len(data) - FramePrefixLen
	if uint64(n) > uint64(^uint32(0)) {
		return Frame{}, fmt.Errorf("wire: frame payload %d bytes overflows length prefix", n)
	}
	binary.BigEndian.PutUint32(data[:FramePrefixLen], uint32(n))
	return Frame{data: data}, nil
}

// Bytes returns the complete frame — length prefix plus payload — ready
// to be written to a stream. Callers must treat the slice as read-only.
func (f Frame) Bytes() []byte { return f.data }

// Payload returns the encoded message without the length prefix, i.e.
// exactly what Decode accepts. Read-only, like Bytes.
func (f Frame) Payload() []byte { return f.data[FramePrefixLen:] }

// Len returns the total frame size in bytes, prefix included.
func (f Frame) Len() int { return len(f.data) }

// PayloadLen returns the encoded message size without the prefix.
func (f Frame) PayloadLen() int { return len(f.data) - FramePrefixLen }

// IsZero reports whether f is the zero Frame (no encoded message).
func (f Frame) IsZero() bool { return f.data == nil }
