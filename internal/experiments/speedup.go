package experiments

import (
	"fmt"
	"runtime"
	"time"

	"newswire/internal/core"
)

// SpeedupReport records a serial-vs-parallel measurement of the cluster
// gossip round loop — the before/after benchmark behind the parallel
// executor. Allocation counters come from runtime.MemStats deltas around
// the measured rounds, so the alloc-reduction work is tracked in the
// same artifact. GOMAXPROCS and NumCPU qualify the wall-clock numbers: a
// single-core host cannot show wall-clock speedup no matter the worker
// count, only the determinism and allocation properties.
type SpeedupReport struct {
	Nodes           int     `json:"nodes"`
	Rounds          int     `json:"rounds"`
	Workers         int     `json:"workers"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	SerialAllocs    uint64  `json:"serial_allocs"`
	ParallelAllocs  uint64  `json:"parallel_allocs"`
	SerialBytes     uint64  `json:"serial_alloc_bytes"`
	ParallelBytes   uint64  `json:"parallel_alloc_bytes"`
}

// MeasureGossipSpeedup times `rounds` gossip rounds of an n-node cluster
// under the serial engine and again under the parallel executor with the
// given worker count (<= 0 selects GOMAXPROCS).
func MeasureGossipSpeedup(nodes, rounds int, seed int64, workers int) (*SpeedupReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	run := func(w int) (secs float64, allocs, bytes uint64, err error) {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N:       nodes,
			Seed:    seed,
			Workers: w,
			Customize: func(i int, cfg *core.Config) {
				cfg.RepCount = 2
			},
		})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("cluster (workers=%d): %w", w, err)
		}
		cluster.RunRounds(2) // warm the tables past the bootstrap transient
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		cluster.RunRounds(rounds)
		secs = time.Since(start).Seconds()
		runtime.ReadMemStats(&m1)
		return secs, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc, nil
	}
	r := &SpeedupReport{
		Nodes:      nodes,
		Rounds:     rounds,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	var err error
	if r.SerialSeconds, r.SerialAllocs, r.SerialBytes, err = run(0); err != nil {
		return nil, err
	}
	if r.ParallelSeconds, r.ParallelAllocs, r.ParallelBytes, err = run(workers); err != nil {
		return nil, err
	}
	if r.ParallelSeconds > 0 {
		r.Speedup = r.SerialSeconds / r.ParallelSeconds
	}
	return r, nil
}
