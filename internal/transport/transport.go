// Package transport abstracts how NewsWire nodes exchange wire.Messages.
//
// Two implementations exist: the discrete-event simulated network in
// internal/sim (virtual time, configurable latency/loss/partitions, scales
// to ~10⁵ nodes in one process) and the TCP transport in this package
// (length-prefixed gob frames, for live multi-process clusters). Protocol
// code sees only this interface, so the same agent runs unchanged in both
// worlds.
package transport

import "newswire/internal/wire"

// Handler consumes an inbound message. Transports guarantee the message
// passed Validate. Handlers must not block for long: the simulated
// transport runs them on the single simulator goroutine, and the TCP
// transport runs them on the connection's read goroutine.
type Handler func(msg *wire.Message)

// Transport sends messages to peers by address. Send is asynchronous and
// best-effort — delivery may silently fail, exactly like the Internet the
// paper targets; the protocols above are built to tolerate loss.
type Transport interface {
	// Addr returns this endpoint's own address, which peers use to reach
	// it and which appears in Message.From.
	Addr() string
	// Send enqueues msg for delivery to the peer at to. It returns an
	// error only for local problems (closed transport, unreachable
	// address format); a nil error is not a delivery guarantee.
	Send(to string, msg *wire.Message) error
	// Close releases the endpoint. Further Sends fail.
	Close() error
}
