// Package transport abstracts how NewsWire nodes exchange wire.Messages.
//
// Two implementations exist: the discrete-event simulated network in
// internal/sim (virtual time, configurable latency/loss/partitions, scales
// to ~10⁵ nodes in one process) and the TCP transport in this package
// (length-prefixed gob frames, for live multi-process clusters). Protocol
// code sees only this interface, so the same agent runs unchanged in both
// worlds.
package transport

import (
	"newswire/internal/metrics"
	"newswire/internal/wire"
)

// Handler consumes an inbound message. Transports guarantee the message
// passed Validate. Handlers must not block for long: the simulated
// transport runs them on the single simulator goroutine, and the TCP
// transport runs them on the connection's read goroutine.
type Handler func(msg *wire.Message)

// Transport sends messages to peers by address. Send is asynchronous and
// best-effort — delivery may silently fail, exactly like the Internet the
// paper targets; the protocols above are built to tolerate loss.
type Transport interface {
	// Addr returns this endpoint's own address, which peers use to reach
	// it and which appears in Message.From.
	Addr() string
	// Send enqueues msg for delivery to the peer at to. It returns an
	// error only for local problems (closed transport, unreachable
	// address format); a nil error is not a delivery guarantee.
	Send(to string, msg *wire.Message) error
	// Close releases the endpoint. Further Sends fail.
	Close() error
}

// FrameSender is implemented by transports that can ship a pre-encoded
// wire.Frame, letting fan-out paths encode a message once and enqueue the
// same immutable bytes to N peers instead of re-serializing per
// recipient. The simulated transport deliberately does not implement it:
// it passes Message values by reference, so there is nothing to encode
// and the deterministic scheduler stays untouched.
type FrameSender interface {
	// NewFrame encodes msg with this endpoint's own address stamped as
	// the sender. msg is only read, never written, so one message can be
	// framed and fanned out concurrently.
	NewFrame(msg *wire.Message) (wire.Frame, error)
	// SendFrame enqueues an encoded frame for delivery to the peer at to,
	// with Send's best-effort semantics.
	SendFrame(to string, f wire.Frame) error
}

// StatsSource is implemented by transports that keep data-path counters
// and can snapshot them (the TCP transport; the simulated transport has
// its own byte-accounting instead).
type StatsSource interface {
	TransportStats() Stats
}

// MetricsFiller is implemented by transports that keep data-path counters
// and can mirror them into a metrics registry (under transport_* names).
// Mirroring must be idempotent — counters synced, not added — matching
// the node's FillMetrics contract.
type MetricsFiller interface {
	FillMetrics(reg *metrics.Registry)
}
