package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/sim"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func testItem(id, subject string) *news.Item {
	return &news.Item{
		Publisher: "slashdot",
		ID:        id,
		Headline:  "headline " + id,
		Body:      "body " + id,
		Subjects:  []string{subject},
		Urgency:   5,
		Published: vtime.Epoch.Add(time.Minute),
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestClusterEndToEndPubSub(t *testing.T) {
	delivered := make(map[int][]string)
	c, err := NewCluster(ClusterConfig{
		N:         12,
		Branching: 4,
		Seed:      42,
		Customize: func(i int, cfg *Config) {
			cfg.OnItem = func(it *news.Item, env *wire.ItemEnvelope) {
				delivered[i] = append(delivered[i], it.Key())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Half the nodes subscribe to tech/linux, the rest to sports.
	for i, n := range c.Nodes {
		if i%2 == 0 {
			if err := n.Subscribe("tech/linux"); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := n.Subscribe("sports/soccer"); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.RunRounds(10) // let subscriptions aggregate to the root

	if err := c.Nodes[0].PublishItem(testItem("k1", "tech/linux"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)

	for i := range c.Nodes {
		wantDelivered := i%2 == 0
		got := len(delivered[i]) == 1
		if wantDelivered && !got {
			t.Errorf("subscriber node %d did not receive the item", i)
		}
		if !wantDelivered && len(delivered[i]) != 0 {
			t.Errorf("non-subscriber node %d received %v", i, delivered[i])
		}
	}
}

// TestClusterLatencyMeasured checks the headline claim (E1) at small
// scale: delivery within "tens of seconds" of publishing.
func TestClusterLatencyMeasured(t *testing.T) {
	type delivery struct {
		node int
		at   time.Time
	}
	var deliveries []delivery
	var clock vtime.Clock
	c, err := NewCluster(ClusterConfig{
		N:         30,
		Branching: 8,
		Seed:      7,
		Customize: func(i int, cfg *Config) {
			node := i
			// Reliable forwarding: the default link model loses 1% of
			// frames, so exact delivery counts need ack/retry.
			cfg.AckTimeout = time.Second
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) {
				deliveries = append(deliveries, delivery{node: node, at: clock.Now()})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock = c.Eng.Clock()
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(10)

	published := c.Eng.Now()
	if err := c.Nodes[0].PublishItem(testItem("lat", "tech/linux"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second)

	if len(deliveries) != len(c.Nodes) {
		t.Fatalf("delivered to %d of %d nodes", len(deliveries), len(c.Nodes))
	}
	for _, d := range deliveries {
		latency := d.at.Sub(published)
		if latency > 10*time.Second {
			t.Errorf("node %d latency %v exceeds tens of seconds", d.node, latency)
		}
	}
}

func TestStateTransferRecovery(t *testing.T) {
	received := make(map[int]int)
	c, err := NewCluster(ClusterConfig{
		N:         4,
		Branching: 4, // all in one leaf zone
		Seed:      11,
		Customize: func(i int, cfg *Config) {
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { received[i]++ }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(6)

	// Node 3 is down while two items are published.
	c.Net.Crash(c.Nodes[3].Addr())
	c.Nodes[0].PublishItem(testItem("missed-1", "tech/linux"), "", "")
	c.Nodes[0].PublishItem(testItem("missed-2", "tech/linux"), "", "")
	c.RunFor(5 * time.Second)
	if received[3] != 0 {
		t.Fatal("crashed node received items")
	}

	// Node 3 returns and recovers from a zone peer's cache.
	c.Net.Restore(c.Nodes[3].Addr())
	c.RunRounds(2)
	if err := c.Nodes[3].RecoverFromZonePeer(100); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)

	if received[3] != 2 {
		t.Fatalf("recovered node received %d items, want 2", received[3])
	}
	// Recovery is idempotent: a second transfer delivers nothing new.
	if err := c.Nodes[3].RecoverFromZonePeer(100); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if received[3] != 2 {
		t.Fatalf("duplicate state transfer re-delivered: %d", received[3])
	}
}

func TestPublisherRosterAggregates(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 6, Branching: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(6)
	c.Nodes[0].PublishItem(testItem("a", "tech/linux"), "", "")
	it := testItem("b", "tech/linux")
	it.Publisher = "wired"
	c.Nodes[5].PublishItem(it, "", "")
	c.RunRounds(8)

	pubs := c.Nodes[2].KnownPublishers()
	if len(pubs) != 2 || pubs[0] != "slashdot" || pubs[1] != "wired" {
		t.Fatalf("roster = %v, want [slashdot wired]", pubs)
	}
}

func TestPublishFlowControl(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 2, Branching: 2, Seed: 3,
		Customize: func(i int, cfg *Config) {
			cfg.PublishRate = 1
			cfg.PublishBurst = 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	n.Subscribe("tech/linux")
	okCount := 0
	for i := 0; i < 10; i++ {
		if err := n.PublishItem(testItem(fmt.Sprintf("flood-%d", i), "tech/linux"), "", ""); err == nil {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("admitted %d publications, want burst of 2", okCount)
	}
}

func TestAdmissionControlAtForwarder(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 2, Branching: 2, Seed: 3,
		Customize: func(i int, cfg *Config) {
			if i == 1 {
				cfg.PublishRate = 1
				cfg.PublishBurst = 1
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Nodes[1].Subscribe("tech/linux")
	c.RunRounds(6)

	// Node 0 floods; node 1's admission control must refuse the excess.
	for i := 0; i < 20; i++ {
		c.Nodes[0].PublishItem(testItem(fmt.Sprintf("f%d", i), "tech/linux"), "", "")
	}
	c.RunFor(5 * time.Second)
	if denied := c.Nodes[1].DeniedPublications("slashdot"); denied == 0 {
		t.Fatal("forwarder admission control never engaged")
	}
	if c.Nodes[1].Delivered() == 0 {
		t.Fatal("admission control starved even the admitted publications")
	}
}

func TestSecurityEndToEnd(t *testing.T) {
	clock := vtime.NewVirtual()
	realm, err := NewRealm(clock, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var secs []*Security
	for i := 0; i < 4; i++ {
		sec, err := realm.Member(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		secs = append(secs, sec)
	}
	if err := realm.Publisher(secs[0], "slashdot"); err != nil {
		t.Fatal(err)
	}

	received := make(map[int]int)
	c, err := NewCluster(ClusterConfig{
		N: 4, Branching: 2, Seed: 5,
		Customize: func(i int, cfg *Config) {
			cfg.Security = secs[i]
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { received[i]++ }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(8)

	// Signed publication from the authorized publisher flows everywhere.
	if err := c.Nodes[0].PublishItem(testItem("signed", "tech/linux"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	for i := range c.Nodes {
		if received[i] != 1 {
			t.Errorf("node %d received %d signed items, want 1", i, received[i])
		}
	}

	// A node without a publisher certificate cannot publish.
	if err := c.Nodes[1].PublishItem(testItem("rogue", "tech/linux"), "", ""); err == nil {
		t.Fatal("node without publisher key published")
	}

	// A forged envelope injected directly is dropped by verification.
	forged, _ := pubsub.EncodeItem(testItem("forged", "tech/linux"),
		pubsub.ModeBloom, pubsub.DefaultGeometry, nil)
	forged.Signer = "slashdot"
	forged.Sig = []byte("not a signature")
	c.Nodes[2].HandleMessage(&wire.Message{
		Kind:      wire.KindMulticast,
		From:      "evil",
		Multicast: &wire.Multicast{TargetZone: c.Nodes[2].ZonePath(), Envelope: forged},
	})
	c.RunFor(5 * time.Second)
	for i := range c.Nodes {
		if received[i] > 1 {
			t.Errorf("node %d accepted a forged item", i)
		}
	}
}

func TestGossipSigningRejectsUncertifiedAgent(t *testing.T) {
	clock := vtime.NewVirtual()
	realm, err := NewRealm(clock, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sec0, _ := realm.Member("node-0")

	eng := sim.NewEngine(9)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	// Node 0 verifies rows; the rogue signs with an unknown identity.
	var n0 *Node
	ep0 := net.Attach("n0", func(m *wire.Message) { n0.HandleMessage(m) })
	n0cfg := Config{
		Name: "node-0", ZonePath: "/z", Transport: ep0,
		Clock: eng.Clock(), Rand: newTestRand(1), Security: sec0,
	}
	var err2 error
	n0, err2 = NewNode(n0cfg)
	if err2 != nil {
		t.Fatal(err2)
	}

	// Rogue row injected as gossip: unsigned.
	n0.HandleMessage(&wire.Message{
		Kind: wire.KindGossip,
		From: "rogue",
		Gossip: &wire.Gossip{
			FromZone: "/z",
			Rows: []wire.RowUpdate{{
				Zone: "/z", Name: "intruder",
				Attrs:  nil,
				Issued: eng.Now(),
				Owner:  "rogue",
			}},
		},
	})
	eng.RunUntilIdle(0)
	if _, ok := n0.Agent().Row("/z", "intruder"); ok {
		t.Fatal("unsigned row merged into a verifying agent")
	}
}

func TestZonePathForShapesTree(t *testing.T) {
	// Small flat case: everyone under one or two leaf zones off the root.
	for i := 0; i < 10; i++ {
		p := ZonePathFor(i, 10, 8)
		if err := astrolabe.ValidateZonePath(p); err != nil {
			t.Fatalf("invalid path %q: %v", p, err)
		}
		if astrolabe.ZoneDepth(p) != 1 {
			t.Fatalf("n=10 b=8: depth of %q = %d, want 1", p, astrolabe.ZoneDepth(p))
		}
	}
	// Larger case: two levels.
	seenZones := make(map[string]int)
	const n, b = 1000, 8
	for i := 0; i < n; i++ {
		p := ZonePathFor(i, n, b)
		if err := astrolabe.ValidateZonePath(p); err != nil {
			t.Fatalf("invalid path %q: %v", p, err)
		}
		seenZones[p]++
		if seenZones[p] > b {
			t.Fatalf("leaf zone %q has more than %d members", p, b)
		}
	}
	// Leaf zones should number ceil(n/b).
	if len(seenZones) != (n+b-1)/b {
		t.Fatalf("got %d leaf zones, want %d", len(seenZones), (n+b-1)/b)
	}
}

func TestNodesInZone(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 8, Branching: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := c.NodesInZone("/")
	if len(all) != 8 {
		t.Fatalf("root zone has %d nodes", len(all))
	}
	some := c.NodesInZone(c.Nodes[0].ZonePath())
	if len(some) == 0 || len(some) > 2 {
		t.Fatalf("leaf zone has %d nodes", len(some))
	}
}

func TestStartStopTicking(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 4, Branching: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.StartTicking()
	c.RunFor(10 * time.Second)
	st := c.Nodes[0].Agent().Stats()
	if st.GossipsSent == 0 {
		t.Fatal("ticking produced no gossip")
	}
	c.StopTicking()
	before := c.Nodes[0].Agent().Stats().GossipsSent
	c.RunFor(10 * time.Second)
	if c.Nodes[0].Agent().Stats().GossipsSent != before {
		t.Fatal("gossip continued after StopTicking")
	}
}

func TestDeepHierarchyEndToEnd(t *testing.T) {
	// branching 4 with 64 nodes yields a 3-level zone tree; publish must
	// traverse representatives at every level.
	delivered := make(map[int]int)
	c, err := NewCluster(ClusterConfig{
		N:         64,
		Branching: 4,
		Seed:      31337,
		Customize: func(i int, cfg *Config) {
			cfg.RepCount = 2
			node := i
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { delivered[node]++ }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	depth := astrolabe.ZoneDepth(c.Nodes[0].ZonePath())
	if depth < 2 {
		t.Fatalf("tree depth = %d, want >= 2 for this test", depth)
	}
	for _, n := range c.Nodes {
		if err := n.Subscribe("world/asia"); err != nil {
			t.Fatal(err)
		}
	}
	c.RunRounds(14) // deeper trees need more rounds to aggregate

	if err := c.Nodes[63].PublishItem(testItem("deep", "world/asia"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)

	missing := 0
	for i := range c.Nodes {
		if delivered[i] != 1 {
			missing++
		}
	}
	// 1% loss with k=2: allow at most one straggler pre-recovery.
	if missing > 1 {
		t.Fatalf("%d of 64 nodes missed the item in a depth-%d tree", missing, depth)
	}
}

func TestClusterChurnJoinAfterStart(t *testing.T) {
	// A node that joins after the cluster has been running learns the
	// hierarchy through an introduction and catches up on missed items
	// through state transfer.
	c, err := NewCluster(ClusterConfig{N: 8, Branching: 4, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(6)
	c.Nodes[0].PublishItem(testItem("before-join", "tech/linux"), "", "")
	c.RunFor(5 * time.Second)

	// Build the late joiner in the same leaf zone as node 1.
	var joiner *Node
	ep := c.Net.Attach("late", func(m *wire.Message) { joiner.HandleMessage(m) })
	j, err := NewNode(Config{
		Name:      "late-node",
		ZonePath:  c.Nodes[1].ZonePath(),
		Transport: ep,
		Clock:     c.Eng.Clock(),
		Rand:      newTestRand(999),
	})
	if err != nil {
		t.Fatal(err)
	}
	joiner = j
	joiner.Subscribe("tech/linux")
	// Introduction: merge an existing member's chain rows.
	joiner.Agent().MergeRows(c.Nodes[1].Agent().ChainRowUpdates())

	// The joiner gossips along with everyone else.
	for round := 0; round < 8; round++ {
		for _, n := range c.Nodes {
			n.Tick()
		}
		joiner.Tick()
		c.Eng.RunFor(2 * time.Second)
	}

	// Members' tables now include the joiner.
	if _, ok := c.Nodes[1].Agent().Row(joiner.ZonePath(), "late-node"); !ok {
		t.Fatal("existing member never learned about the joiner")
	}

	// State transfer catches the joiner up on the missed item.
	if err := joiner.RecoverFromZonePeer(10); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(5 * time.Second)
	if !joiner.Cache().Has("slashdot/before-join#0") {
		t.Fatal("joiner did not receive the pre-join item via state transfer")
	}

	// And new publications reach it directly.
	c.Nodes[0].PublishItem(testItem("after-join", "tech/linux"), "", "")
	c.Eng.RunFor(5 * time.Second)
	if !joiner.Cache().Has("slashdot/after-join#0") {
		t.Fatal("joiner did not receive post-join item")
	}
}

func TestNodeAccessorsAndSubscriptionOps(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 2, Branching: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	if n.Name() != "node-0" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.Router() == nil || n.Agent() == nil || n.Cache() == nil {
		t.Error("component accessors returned nil")
	}
	if err := n.Subscribe("tech/linux", "world/asia"); err != nil {
		t.Fatal(err)
	}
	n.Unsubscribe("world/asia")
	subs := n.Subjects()
	if len(subs) != 1 || subs[0] != "tech/linux" {
		t.Errorf("Subjects = %v", subs)
	}
	if err := n.SetPredicate("urgency <= 5"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPredicate("bad("); err == nil {
		t.Error("bad predicate accepted")
	}
	n.SetLoad(0.75)
	if v, _ := n.Agent().Attr(astrolabe.AttrLoad).AsFloat(); v != 0.75 {
		t.Errorf("load attr = %v", v)
	}
}

func TestNodeSubscriberPredicateFiltersDelivery(t *testing.T) {
	received := 0
	c, err := NewCluster(ClusterConfig{
		N: 2, Branching: 2, Seed: 23,
		Customize: func(i int, cfg *Config) {
			if i == 1 {
				cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { received++ }
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Nodes[1].Subscribe("tech/linux")
	c.Nodes[1].SetPredicate("urgency <= 3")
	c.RunRounds(6)

	urgent := testItem("urgent", "tech/linux")
	urgent.Urgency = 1
	routine := testItem("routine", "tech/linux")
	routine.Urgency = 8
	c.Nodes[0].PublishItem(urgent, "", "")
	c.Nodes[0].PublishItem(routine, "", "")
	c.RunFor(5 * time.Second)

	if received != 1 {
		t.Fatalf("received %d items, want only the urgent one", received)
	}
}

func TestCategoryMaskModeEndToEnd(t *testing.T) {
	// The early prototype's per-publisher category masks (§7), end to end.
	delivered := make(map[int]int)
	c, err := NewCluster(ClusterConfig{
		N: 4, Branching: 2, Seed: 29,
		Customize: func(i int, cfg *Config) {
			cfg.Mode = pubsub.ModeCategoryMask
			node := i
			cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { delivered[node]++ }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 follows slashdot's linux coverage; node 2 follows wired's.
	if err := c.Nodes[1].SubscribePublisher("slashdot", "tech/linux"); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[2].SubscribePublisher("wired", "tech/linux"); err != nil {
		t.Fatal(err)
	}
	c.RunRounds(8)

	it := testItem("mask-item", "tech/linux") // publisher: slashdot
	if err := c.Nodes[0].PublishItem(it, "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)

	if delivered[1] != 1 {
		t.Error("slashdot subscriber missed the slashdot item")
	}
	if delivered[2] != 0 {
		t.Error("wired subscriber received a slashdot item")
	}
}

func TestStateReplySecurityFiltering(t *testing.T) {
	clock := vtime.NewVirtual()
	realm, err := NewRealm(clock, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := realm.Member("node-0")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(77)
	net := sim.NewNetwork(eng, sim.LinkModel{})
	received := 0
	var n *Node
	ep := net.Attach("n0", func(m *wire.Message) { n.HandleMessage(m) })
	n, err = NewNode(Config{
		Name: "node-0", ZonePath: "/z", Transport: ep,
		Clock: eng.Clock(), Rand: newTestRand(3), Security: sec,
		OnItem: func(*news.Item, *wire.ItemEnvelope) { received++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Subscribe("tech/linux")

	// A state reply carrying an unsigned envelope must be discarded.
	env, _ := pubsub.EncodeItem(testItem("sneak", "tech/linux"),
		pubsub.ModeBloom, pubsub.DefaultGeometry, nil)
	n.HandleMessage(&wire.Message{
		Kind:       wire.KindStateReply,
		From:       "evil",
		StateReply: &wire.StateReply{Envelopes: []wire.ItemEnvelope{env}},
	})
	eng.RunUntilIdle(0)
	if received != 0 {
		t.Fatal("unsigned envelope accepted via state transfer")
	}
}

func TestNewSecurityValidation(t *testing.T) {
	clock := vtime.NewVirtual()
	realm, _ := NewRealm(clock, time.Hour)
	good, err := realm.Member("m")
	if err != nil || good == nil {
		t.Fatal(err)
	}
	cases := []Security{
		{},
		{Clock: clock},
		{Clock: clock, AuthorityPub: realm.AuthorityKey.Public},
		{Clock: clock, AuthorityPub: realm.AuthorityKey.Public, CertName: "x"},
	}
	for i, s := range cases {
		if _, err := NewSecurity(s); err == nil {
			t.Errorf("case %d: invalid security accepted", i)
		}
	}
	if _, err := NewRealm(nil, time.Hour); err == nil {
		t.Error("NewRealm with nil clock accepted")
	}
	if r, err := NewRealm(clock, 0); err != nil || r.TTL <= 0 {
		t.Error("NewRealm default TTL not applied")
	}
}

func TestAntiEntropyRepairsLossAutomatically(t *testing.T) {
	// Bimodal-multicast behaviour (§5): with background anti-entropy on,
	// items missed by the best-effort multicast are recovered without
	// any explicit recovery call, even under heavy loss.
	c, err := NewCluster(ClusterConfig{
		N: 12, Branching: 4, Seed: 83,
		Link: sim.LinkModel{
			LatencyMin: 5 * time.Millisecond,
			LatencyMax: 50 * time.Millisecond,
			LossRate:   0.10, // brutal
		},
		Customize: func(i int, cfg *Config) {
			cfg.AntiEntropyEvery = 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.Subscribe("tech/linux")
	}
	c.RunRounds(8)

	for i := 0; i < 5; i++ {
		it := testItem(fmt.Sprintf("ae-%d", i), "tech/linux")
		it.Published = c.Eng.Now()
		if err := c.Nodes[0].PublishItem(it, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	// Let multicast and several anti-entropy rounds run.
	c.RunRounds(12)

	for i, n := range c.Nodes {
		if n.Delivered() != 5 {
			t.Errorf("node %d delivered %d of 5 despite anti-entropy", i, n.Delivered())
		}
	}
}

func TestAntiEntropyDisabledByDefault(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 2, Branching: 2, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	c.RunRounds(4)
	// No state-transfer traffic should have occurred.
	sent, _, _ := c.Net.Totals()
	if sent == 0 {
		t.Fatal("no traffic at all?")
	}
	for _, n := range c.Nodes {
		if st := n.Cache().Stats(); st.Puts != 0 {
			t.Fatal("cache activity without anti-entropy or publishes")
		}
	}
}

func TestMultiHashBloomGeometryEndToEnd(t *testing.T) {
	// The whole system runs on a shared non-default geometry (4096 bits,
	// 4 hashes): positions, aggregation and filtering must all agree.
	geo := pubsub.Geometry{Bits: 4096, Hashes: 4}
	delivered := 0
	c, err := NewCluster(ClusterConfig{
		N: 8, Branching: 4, Seed: 91,
		Customize: func(i int, cfg *Config) {
			cfg.Geometry = geo
			if i == 5 {
				cfg.OnItem = func(*news.Item, *wire.ItemEnvelope) { delivered++ }
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Nodes[5].Subscribe("world/asia")
	c.RunRounds(8)

	if err := c.Nodes[0].PublishItem(testItem("geo", "world/asia"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// Non-subscribers saw no delivery.
	for i, n := range c.Nodes {
		if i != 5 && n.Delivered() != 0 {
			t.Fatalf("node %d received without subscription", i)
		}
	}
}

// TestClusterPredicateMode runs the §7 target design end to end: typed
// query subscriptions compile to Bloom signatures, aggregate with zone
// subgrouping, and the forwarding plane prunes items whose metadata the
// predicates cannot match — before the leaf's exact check.
func TestClusterPredicateMode(t *testing.T) {
	delivered := make(map[int][]string)
	c, err := NewCluster(ClusterConfig{
		N:         12,
		Branching: 4,
		Seed:      42,
		Customize: func(i int, cfg *Config) {
			cfg.Mode = pubsub.ModePredicate
			cfg.Geometry = pubsub.Geometry{Bits: 2048, Hashes: 4}
			cfg.OnItem = func(it *news.Item, env *wire.ItemEnvelope) {
				delivered[i] = append(delivered[i], it.Key())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even nodes want urgent linux news via a typed query; node 1 uses a
	// plain subject subscription (still supported in predicate mode); the
	// rest subscribe to an unrelated subject.
	for i, n := range c.Nodes {
		switch {
		case i%2 == 0:
			if _, err := n.SubscribeQuery("subjects = 'tech/linux' AND urgency >= 6"); err != nil {
				t.Fatal(err)
			}
		case i == 1:
			if err := n.Subscribe("tech/linux"); err != nil {
				t.Fatal(err)
			}
		default:
			if err := n.Subscribe("sports/soccer"); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.RunRounds(10)

	hot := testItem("hot", "tech/linux")
	hot.Urgency = 7
	calm := testItem("calm", "tech/linux")
	calm.Urgency = 2
	if err := c.Nodes[0].PublishItem(hot, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].PublishItem(calm, "", ""); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)

	for i := range c.Nodes {
		var want []string
		switch {
		case i%2 == 0:
			want = []string{"slashdot/hot#0"}
		case i == 1:
			want = []string{"slashdot/hot#0", "slashdot/calm#0"}
		}
		if len(delivered[i]) != len(want) {
			t.Errorf("node %d delivered %v, want %v", i, delivered[i], want)
			continue
		}
		got := make(map[string]bool, len(delivered[i]))
		for _, k := range delivered[i] {
			got[k] = true
		}
		for _, k := range want {
			if !got[k] {
				t.Errorf("node %d missing %s (got %v)", i, k, delivered[i])
			}
		}
	}

	// The routing plane should have recorded forwards and subgroup tests,
	// and some zone rows should advertise clustered subgroup filters.
	var forwards, subTests int64
	filters := 0
	for _, n := range c.Nodes {
		rs := n.RoutingStats()
		forwards += rs.Forwards
		subTests += rs.SubgroupTests
		filters += n.SubgroupFilters()
	}
	if forwards == 0 || subTests == 0 || filters == 0 {
		t.Errorf("routing telemetry empty: forwards=%d subgroupTests=%d filters=%d",
			forwards, subTests, filters)
	}
}
