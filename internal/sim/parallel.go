package sim

// Deterministic parallel execution.
//
// The serial engine runs every event on one goroutine in (time, seq)
// order. At 131k gossiping nodes that single core is the bottleneck: the
// protocol work is embarrassingly parallel (each delivery touches one
// node's tables), but the engine serializes it.
//
// The Executor exploits the structure conservatively, in the classic
// PDES sense: every message in the simulated network takes at least
// LinkModel.LatencyMin of virtual time to arrive, so an event owned by
// node A at time T cannot influence an event owned by node B before
// T+LatencyMin. Events tagged with an owner and falling inside one
// lookahead window [T, T+LatencyMin) are therefore causally independent
// whenever their owners differ, and may run concurrently.
//
// Determinism is preserved by construction, not by luck:
//
//   - Compute phase: workers run each owner's window events against that
//     node's own state. Side effects that would touch shared simulator
//     state — outbound sends and timer registrations — are not applied;
//     they are buffered per event, in call order.
//   - Commit phase: a single goroutine replays the buffered effects in
//     canonical (time, seq) event order, with the engine clock set to
//     each originating event's timestamp. The engine RNG (loss and
//     latency sampling) is consumed only here, in exactly the order the
//     serial engine would have consumed it, and new events receive
//     exactly the sequence numbers the serial engine would have
//     assigned. The resulting event queue — and hence the entire run —
//     is bit-identical to serial execution.
//
// Per-node randomness (gossip partner selection) never touches the
// engine RNG: each node owns a private rand.Rand derived from the seed,
// and a node's events always run single-threaded within a window, so
// those streams are consumed in serial order too.
//
// Events without an owner tag (engine tickers, fault injections,
// test callbacks) make no isolation promise; the window collector stops
// at the first one and runs it alone, serially, at its global position.
//
// Known restriction: a node-scheduled timer (Config.After) with a delay
// shorter than the lookahead could fire inside a window that has already
// executed past it, which would break serial equivalence. The commit
// phase detects that case and panics; NewCluster validates configured
// protocol timers against the link model up front. All real timers
// (ack/retransmit deadlines ≥ 1s) exceed any plausible LatencyMin by
// orders of magnitude.

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// OwnedClock is the vtime.Clock handed to an executor-registered node.
// While the node is executing events inside a parallel window it reports
// the owning event's timestamp (the engine clock lags behind during the
// compute phase); outside windows it follows the engine clock. Reads and
// writes are ordered by the executor's fork/join, so no lock is needed.
type OwnedClock struct {
	base   vtime.Clock
	active bool
	at     time.Time
}

// Now implements vtime.Clock.
func (c *OwnedClock) Now() time.Time {
	if c.active {
		return c.at
	}
	return c.base.Now()
}

func (c *OwnedClock) set(t time.Time) { c.at = t; c.active = true }
func (c *OwnedClock) clear()          { c.active = false }

// effect is one buffered side effect of an owned computation: either an
// outbound message (msg != nil) or a timer registration (fn != nil).
type effect struct {
	// Send effect.
	ep  *Endpoint
	to  string
	msg *wire.Message
	// Timer effect.
	d  time.Duration
	fn func()
}

// execNode is the executor's per-owner slot. sink is non-nil exactly
// while this owner's computation runs on a worker; the owning endpoint
// and After func buffer their effects through it.
type execNode struct {
	clock *OwnedClock
	sink  *[]effect
}

// Executor runs an Engine's owned events in deterministic parallel
// windows. Construct with NewExecutor, register every node's endpoint
// with Register, then drive virtual time with RunFor/RunUntil instead of
// the engine's own methods. The same engine can still be driven serially
// (Engine.RunFor) at any point; the two modes interleave freely.
type Executor struct {
	eng       *Engine
	net       *Network
	workers   int
	lookahead time.Duration
	nodes     []*execNode

	// Window scratch, reused across windows to keep the steady state
	// allocation-free.
	batch    []*event
	effects  [][]effect
	perOwner [][]int32
	touched  []int32

	// Tick-phase scratch (RunOwners).
	tickEffects [][]effect
}

// NewExecutor returns an executor for net's engine. workers <= 0 selects
// runtime.GOMAXPROCS(0). The lookahead window is the link model's
// minimum latency; a zero-latency link model leaves no exploitable
// lookahead and degenerates to serial stepping.
func NewExecutor(net *Network, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{
		eng:       net.eng,
		net:       net,
		workers:   workers,
		lookahead: net.link.LatencyMin,
	}
}

// Workers returns the configured worker count.
func (x *Executor) Workers() int { return x.workers }

// Lookahead returns the conservative window width (the link model's
// minimum latency).
func (x *Executor) Lookahead() time.Duration { return x.lookahead }

// Register ties ep to a new owner slot and returns the clock its node
// must use. Delivery events for ep, and timers created through AfterFunc,
// are tagged with the owner and become eligible for parallel windows.
func (x *Executor) Register(ep *Endpoint) *OwnedClock {
	oc := &OwnedClock{base: x.eng.clock}
	en := &execNode{clock: oc}
	ep.exec = en
	ep.owner = len(x.nodes)
	x.nodes = append(x.nodes, en)
	x.perOwner = append(x.perOwner, nil)
	x.tickEffects = append(x.tickEffects, nil)
	return oc
}

// AfterFunc returns the After scheduler for a registered endpoint's
// node: inside a window it buffers the timer as an effect (committed in
// canonical order); outside it schedules directly on the engine, tagged
// with the node's owner so the timer's firing can itself be parallelized.
func (x *Executor) AfterFunc(ep *Endpoint) func(d time.Duration, fn func()) {
	en, owner := ep.exec, ep.owner
	return func(d time.Duration, fn func()) {
		if sink := en.sink; sink != nil {
			*sink = append(*sink, effect{d: d, fn: fn})
			return
		}
		x.eng.AfterOwned(owner, d, fn)
	}
}

// RunUntil executes events until the queue is empty or the next event is
// after t, exactly like Engine.RunUntil but running owned events in
// parallel windows. It returns the number of events run.
func (x *Executor) RunUntil(t time.Time) int {
	e := x.eng
	n := 0
	for e.events.Len() > 0 {
		first := e.events[0]
		if first.at.After(t) {
			break
		}
		if first.owner < 0 || x.lookahead <= 0 {
			e.Step()
			n++
			continue
		}
		// Collect the conservative window: owned events in
		// [first.at, first.at+lookahead), not beyond t, stopping at the
		// first unowned event (it must run at its global position).
		end := first.at.Add(x.lookahead)
		batch := x.batch[:0]
		for e.events.Len() > 0 {
			ev := e.events[0]
			if ev.owner < 0 || ev.at.After(t) || !ev.at.Before(end) {
				break
			}
			heap.Pop(&e.events)
			batch = append(batch, ev)
		}
		x.batch = batch[:0] // retain backing array for reuse
		if len(batch) == 0 {
			// Defensive: cannot happen with lookahead > 0.
			e.Step()
			n++
			continue
		}
		if len(batch) == 1 {
			// Nothing to overlap; run it exactly as Engine.Step would.
			ev := batch[0]
			e.clock.SetNow(ev.at)
			ev.fn()
			n++
			continue
		}
		x.runWindow(batch)
		n += len(batch)
	}
	e.clock.SetNow(t)
	return n
}

// RunFor advances the simulation by d of virtual time, in parallel.
func (x *Executor) RunFor(d time.Duration) int {
	return x.RunUntil(x.eng.clock.Now().Add(d))
}

// runWindow executes one batch of owned events: compute in parallel
// (grouped by owner, each owner's events in order), then commit effects
// serially in canonical (time, seq) order.
func (x *Executor) runWindow(batch []*event) {
	// Group batch indices by owner, preserving in-owner order.
	for len(x.effects) < len(batch) {
		x.effects = append(x.effects, nil)
	}
	touched := x.touched[:0]
	for i, ev := range batch {
		o := ev.owner
		if len(x.perOwner[o]) == 0 {
			touched = append(touched, int32(o))
		}
		x.perOwner[o] = append(x.perOwner[o], int32(i))
		x.effects[i] = x.effects[i][:0]
	}

	// Compute phase.
	w := x.workers
	if w > len(touched) {
		w = len(touched)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if int(k) >= len(touched) {
					return
				}
				o := touched[k]
				en := x.nodes[o]
				for _, bi := range x.perOwner[o] {
					ev := batch[bi]
					en.clock.set(ev.at)
					en.sink = &x.effects[bi]
					ev.fn()
				}
				en.sink = nil
				en.clock.clear()
			}
		}()
	}
	wg.Wait()

	// Commit phase: replay effects in (time, seq) order.
	lastAt := batch[len(batch)-1].at
	for i, ev := range batch {
		x.eng.clock.SetNow(ev.at)
		x.commit(x.effects[i], ev.owner, ev.at, lastAt)
		x.effects[i] = x.effects[i][:0]
	}

	// Reset per-owner scratch.
	for _, o := range touched {
		x.perOwner[o] = x.perOwner[o][:0]
	}
	x.touched = touched[:0]
}

// commit applies one event's buffered effects at the engine's current
// time. lastAt is the latest event timestamp already executed in the
// enclosing window; a timer effect landing at or before it would violate
// serial equivalence (see the package comment's known restriction).
func (x *Executor) commit(effs []effect, owner int, at, lastAt time.Time) {
	for j := range effs {
		eff := &effs[j]
		if eff.msg != nil {
			n := x.net
			n.mu.Lock()
			if eff.ep.closed {
				// Serial Send would have returned errClosed without
				// touching stats; senders treat gossip as best-effort.
				n.mu.Unlock()
				continue
			}
			eff.ep.transmit(eff.to, eff.msg) // unlocks n.mu
			continue
		}
		// A timer firing strictly before the window's last executed
		// event would have interleaved with already-run events in serial
		// order (firing exactly at lastAt is safe: its sequence number
		// is necessarily later).
		fires := at.Add(eff.d)
		if fires.Before(at) {
			fires = at // AfterOwned clamps negative delays the same way
		}
		if fires.Before(lastAt) {
			panic(fmt.Sprintf(
				"sim: owned timer (%v) fires inside an executed window (%v <= %v); "+
					"timers shorter than the link lookahead require the serial engine",
				eff.d, fires, lastAt))
		}
		x.eng.AfterOwned(owner, eff.d, eff.fn)
	}
}

// RunOwners runs fn(owner) for every registered owner at the current
// virtual time — the parallel equivalent of a serial for-loop over
// nodes, as used by a cluster's per-round tick phase. Each owner's sends
// and timer registrations are buffered and committed in ascending owner
// order, which is exactly the order the serial loop produces.
func (x *Executor) RunOwners(fn func(owner int)) {
	nOwners := len(x.nodes)
	if nOwners == 0 {
		return
	}
	now := x.eng.clock.Now()
	for i := range x.tickEffects {
		x.tickEffects[i] = x.tickEffects[i][:0]
	}
	w := x.workers
	if w > nOwners {
		w = nOwners
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= nOwners {
					return
				}
				en := x.nodes[k]
				en.clock.set(now)
				en.sink = &x.tickEffects[k]
				fn(k)
				en.sink = nil
				en.clock.clear()
			}
		}()
	}
	wg.Wait()
	for k := 0; k < nOwners; k++ {
		x.commit(x.tickEffects[k], k, now, now)
	}
}
