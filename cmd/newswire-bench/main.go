// Command newswire-bench regenerates every experiment table in
// EXPERIMENTS.md (E1–E8 and ablations A1–A4).
//
// Usage:
//
//	newswire-bench              # run everything at standard size
//	newswire-bench -run E3,E5   # specific experiments
//	newswire-bench -quick       # smaller, faster configurations
//	newswire-bench -big         # include the largest E1/E7 points
//	newswire-bench -seed 7      # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"newswire/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newswire-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("newswire-bench", flag.ContinueOnError)
	var (
		runList = fs.String("run", "all", "comma-separated experiment IDs (E1..E8, A1..A4) or 'all'")
		quick   = fs.Bool("quick", false, "run reduced-size configurations")
		big     = fs.Bool("big", false, "include the largest configurations (slow, memory-hungry)")
		seed    = fs.Int64("seed", 1, "deterministic random seed")
		list    = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	}

	want := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range want {
			found := false
			for _, r := range all {
				if r.ID == id {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
		}
	}

	opt := experiments.Options{Quick: *quick, Big: *big, Seed: *seed}
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table := r.Run(opt)
		table.Render(os.Stdout)
		fmt.Printf("   (%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
