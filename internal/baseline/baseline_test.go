package baseline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"newswire/internal/news"
	"newswire/internal/vtime"
	"newswire/internal/workload"
)

func item(id string, published time.Time) *news.Item {
	// Body sized like a real article (~2 KB) so the RSS summary overhead
	// (~120 B/entry) stays small relative to full-text transfers.
	return &news.Item{
		Publisher: "slashdot",
		ID:        id,
		Headline:  "headline " + id,
		Body:      strings.Repeat("body of "+id+" ", 150),
		Subjects:  []string{"tech/linux"},
		Urgency:   5,
		Published: published,
	}
}

func TestNewPullServerValidation(t *testing.T) {
	if _, err := NewPullServer(nil, 10, 0); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewPullServer(vtime.NewVirtual(), 0, 0); err == nil {
		t.Error("zero front size accepted")
	}
}

func TestFetchModeString(t *testing.T) {
	if FetchFull.String() != "full" || FetchRSS.String() != "rss" || FetchDelta.String() != "delta" {
		t.Fatal("mode names wrong")
	}
	if FetchMode(9).String() != "mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestFrontPageOrderingAndTrim(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 3, 0)
	for i := 0; i < 5; i++ {
		s.Publish(item(fmt.Sprintf("i%d", i), clock.Now()))
		clock.Advance(time.Minute)
	}
	page := s.FrontPage()
	if len(page) != 3 {
		t.Fatalf("front page has %d items, want 3", len(page))
	}
	if page[0].ID != "i4" || page[2].ID != "i2" {
		t.Fatalf("ordering wrong: %s .. %s", page[0].ID, page[2].ID)
	}
}

func TestPublishRevisionReplacesInPlace(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 10, 0)
	orig := item("story", clock.Now())
	s.Publish(orig)
	s.Publish(item("other", clock.Now()))
	rev := *orig
	rev.Revision = 1
	s.Publish(&rev)
	page := s.FrontPage()
	if len(page) != 2 {
		t.Fatalf("revision duplicated the story: %d items", len(page))
	}
	if page[0].ID != "story" || page[0].Revision != 1 {
		t.Fatalf("revision not at top: %+v", page[0])
	}
}

func TestFullPullRedundancyGrowsWithVisits(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 15, 0)
	// Stable front page: publish 15 items, then a reader visits 4 times
	// with one new item between visits.
	for i := 0; i < 15; i++ {
		s.Publish(item(fmt.Sprintf("seed%d", i), clock.Now()))
	}
	r := NewReader()
	for visit := 0; visit < 4; visit++ {
		if !s.Visit(r, FetchFull) {
			t.Fatal("visit rejected without capacity limit")
		}
		clock.Advance(6 * time.Hour)
		s.Publish(item(fmt.Sprintf("new%d", visit), clock.Now()))
	}
	// Of 4 pulls of a 15-item page with ~1 new item per revisit, the
	// redundant fraction must be substantial (the paper says ~70%).
	frac := r.RedundancyFraction()
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("redundancy fraction = %v, want 0.5..0.95", frac)
	}
	if r.Visits != 4 {
		t.Fatalf("visits = %d", r.Visits)
	}
}

func TestDeltaPullAvoidsRedundancy(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 15, 0)
	for i := 0; i < 15; i++ {
		s.Publish(item(fmt.Sprintf("seed%d", i), clock.Now()))
	}
	r := NewReader()
	for visit := 0; visit < 4; visit++ {
		s.Visit(r, FetchDelta)
		clock.Advance(6 * time.Hour)
		s.Publish(item(fmt.Sprintf("new%d", visit), clock.Now()))
	}
	if frac := r.RedundancyFraction(); frac > 0.05 {
		t.Fatalf("delta redundancy = %v, want ~0", frac)
	}
	if r.TotalBytes == 0 {
		t.Fatal("delta reader received nothing")
	}
}

func TestRSSPullReducesRedundancy(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 15, 0)
	for i := 0; i < 15; i++ {
		s.Publish(item(fmt.Sprintf("seed%d", i), clock.Now()))
	}
	full, rss := NewReader(), NewReader()
	for visit := 0; visit < 4; visit++ {
		s.Visit(full, FetchFull)
		s.Visit(rss, FetchRSS)
		clock.Advance(6 * time.Hour)
		s.Publish(item(fmt.Sprintf("new%d", visit), clock.Now()))
	}
	if rss.RedundancyFraction() >= full.RedundancyFraction() {
		t.Fatalf("RSS (%v) should beat full pulls (%v)",
			rss.RedundancyFraction(), full.RedundancyFraction())
	}
	if rss.TotalBytes >= full.TotalBytes {
		t.Fatalf("RSS bytes %d should be below full bytes %d", rss.TotalBytes, full.TotalBytes)
	}
}

func TestCapacityRejectsOverload(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 5, 10) // 10 requests/second
	s.Publish(item("a", clock.Now()))

	served, rejected := 0, 0
	for i := 0; i < 100; i++ {
		r := NewReader()
		if s.Visit(r, FetchFull) {
			served++
		} else {
			rejected++
			if r.Failures != 1 {
				t.Fatal("failure not recorded on reader")
			}
		}
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("served=%d rejected=%d, want both nonzero", served, rejected)
	}
	st := s.Stats()
	if st.Rejected != int64(rejected) {
		t.Fatalf("server rejected counter %d != %d", st.Rejected, rejected)
	}
	// Capacity recovers after time passes.
	clock.Advance(10 * time.Second)
	if !s.Visit(NewReader(), FetchFull) {
		t.Fatal("capacity did not recover")
	}
}

func TestPullServerStats(t *testing.T) {
	clock := vtime.NewVirtual()
	s, _ := NewPullServer(clock, 5, 0)
	s.Publish(item("a", clock.Now()))
	s.Visit(NewReader(), FetchFull)
	st := s.Stats()
	if st.Published != 1 || st.Requests != 1 || st.Served != 1 || st.BytesOut == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirectPushFiltersAndCounts(t *testing.T) {
	d := NewDirectPush()
	d.Subscribe("alice", []string{"tech/linux"})
	d.Subscribe("bob", []string{"sports/soccer"})
	d.Subscribe("carol", []string{"tech/linux", "world/asia"})
	if d.Subscribers() != 3 {
		t.Fatalf("Subscribers = %d", d.Subscribers())
	}

	it := item("x", vtime.Epoch)
	sent := d.Publish(it)
	if sent != 2 {
		t.Fatalf("sent to %d, want 2 (alice, carol)", sent)
	}
	st := d.Stats()
	if st.MsgsSent != 2 || st.ItemsPublished != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != int64(2*it.Size()) {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, 2*it.Size())
	}
	// Publisher-side filter work is linear in the audience.
	if d.FilterOps != 3 {
		t.Fatalf("FilterOps = %d, want 3", d.FilterOps)
	}
}

func TestDirectPushEgressLinearInAudience(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100} {
		d := NewDirectPush()
		for i := 0; i < n; i++ {
			d.Subscribe(fmt.Sprintf("s%d", i),
				workload.SampleSubscriptions(rng, news.StandardSubjects, 3, 1.0))
		}
		it := item("story", vtime.Epoch)
		it.Subjects = news.StandardSubjects // matches everyone
		if sent := d.Publish(it); sent != n {
			t.Fatalf("n=%d: sent %d", n, sent)
		}
	}
}
