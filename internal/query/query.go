// Package query implements NewsWire's typed subscription predicate
// language over NITF-style news metadata — the "more complex selection
// criteria based on the meta-data associated with the news-items, in the
// form of an SQL query" of paper §7–8.
//
// A predicate is a boolean expression over the fixed metadata fields of
// pubsub.ItemMetadataRow (publisher, item_id, revision, urgency, subjects,
// published), built from comparisons, IN lists, LIKE patterns, BETWEEN
// ranges, and AND/OR/NOT. The lexer is sqlagg's (shared string escaping,
// numbers, operators), with IN/LIKE/BETWEEN grafted on as contextual
// keywords.
//
// Each predicate supports two evaluations:
//
//   - Match: the exact evaluator, run at the leaf in place of the plain
//     subject bit test. Multi-valued fields (subjects) match
//     existentially: subjects = 'x' is "some subject equals x", and
//     subjects != 'x' is its negation ("no subject equals x").
//   - Compile: a coarse routing Signature — per-dimension covers over the
//     subject, publisher, and urgency dimensions, hashed into one Bloom
//     filter for OR-aggregation up the zone hierarchy. The signature is
//     sound: it can forward too much, never too little (see signature.go).
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"newswire/internal/sqlagg"
)

// SyntaxError reports a lexical, grammatical, or type failure with its
// byte position in the source.
type SyntaxError struct {
	Pos int
	Msg string
	Src string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

// fieldType is the static type of a metadata field or literal.
type fieldType uint8

const (
	ftString  fieldType = iota + 1
	ftInt               // revision, urgency
	ftTime              // published (string literals, RFC 3339)
	ftStrings           // subjects: multi-valued, existential semantics
)

func (t fieldType) String() string {
	switch t {
	case ftString:
		return "string"
	case ftInt:
		return "integer"
	case ftTime:
		return "timestamp"
	case ftStrings:
		return "string set"
	default:
		return "unknown"
	}
}

// fieldInfo describes one queryable metadata field.
type fieldInfo struct {
	name string // canonical name (aliases normalize to it)
	typ  fieldType
}

// fields maps every accepted field spelling to its canonical descriptor.
// The set mirrors news.MetadataFields; "subject" is accepted as an alias
// for "subjects" since single-subject predicates read naturally with it.
var fields = map[string]fieldInfo{
	"publisher": {"publisher", ftString},
	"item_id":   {"item_id", ftString},
	"revision":  {"revision", ftInt},
	"urgency":   {"urgency", ftInt},
	"subjects":  {"subjects", ftStrings},
	"subject":   {"subjects", ftStrings},
	"published": {"published", ftTime},
}

// Fields returns the canonical queryable field names, sorted. It must
// stay in lockstep with pubsub.ItemMetadataRow; a test pins it to
// news.MetadataFields.
func Fields() []string {
	seen := make(map[string]bool)
	var out []string
	for _, fi := range fields {
		if !seen[fi.name] {
			seen[fi.name] = true
			out = append(out, fi.name)
		}
	}
	sort.Strings(out)
	return out
}

// literal is a typed constant: a string, an integer, or a timestamp
// (written as an RFC 3339 string literal).
type literal struct {
	typ fieldType // ftString, ftInt, or ftTime
	s   string
	i   int64
	t   time.Time
}

func (l literal) append(sb *strings.Builder) {
	switch l.typ {
	case ftInt:
		sb.WriteString(strconv.FormatInt(l.i, 10))
	case ftTime:
		quoteString(sb, l.t.Format(time.RFC3339Nano))
	default:
		quoteString(sb, l.s)
	}
}

// quoteString writes a single-quoted SQL string literal, doubling
// embedded quotes (the sqlagg lexer's escape).
func quoteString(sb *strings.Builder, s string) {
	sb.WriteByte('\'')
	sb.WriteString(strings.ReplaceAll(s, "'", "''"))
	sb.WriteByte('\'')
}

// Predicate is a parsed, type-checked subscription predicate.
type Predicate struct {
	expr expr
	src  string // canonical rendering (stable under re-parse)
}

// Parse parses and type-checks one predicate expression.
func Parse(src string) (*Predicate, error) {
	toks, err := sqlagg.Tokens(src, "IN", "LIKE", "BETWEEN")
	if err != nil {
		if se, ok := err.(*sqlagg.SyntaxError); ok {
			return nil, &SyntaxError{Pos: se.Pos, Msg: se.Msg, Src: src}
		}
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.Kind != sqlagg.TokEOF {
		return nil, p.errorf(tok.Pos, "unexpected %s %q after expression", tok.Kind, tok.Text)
	}
	var sb strings.Builder
	e.append(&sb)
	return &Predicate{expr: e, src: sb.String()}, nil
}

// String returns the canonical source: normalized field names and
// operators, fully parenthesized combinators. Parsing the result yields
// an identical predicate (FuzzRoundTrip pins this).
func (p *Predicate) String() string { return p.src }

type parser struct {
	src  string
	toks []sqlagg.Token
	i    int
}

func (p *parser) peek() sqlagg.Token { return p.toks[p.i] }

func (p *parser) next() sqlagg.Token {
	tok := p.toks[p.i]
	if tok.Kind != sqlagg.TokEOF {
		p.i++
	}
	return tok
}

func (p *parser) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: p.src}
}

// accept consumes the next token when it is the given keyword.
func (p *parser) accept(keyword string) bool {
	if tok := p.peek(); tok.Kind == sqlagg.TokKeyword && tok.Text == keyword {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(keyword string) error {
	if !p.accept(keyword) {
		tok := p.peek()
		return p.errorf(tok.Pos, "expected %s, found %s %q", keyword, tok.Kind, tok.Text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if tok := p.peek(); tok.Kind == sqlagg.TokOp && tok.Text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binExpr{or: true, l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &binExpr{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.accept("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	tok := p.peek()
	switch {
	case tok.Kind == sqlagg.TokOp && tok.Text == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.acceptOp(")") {
			t := p.peek()
			return nil, p.errorf(t.Pos, "expected ), found %s %q", t.Kind, t.Text)
		}
		return e, nil
	case tok.Kind == sqlagg.TokKeyword && tok.Text == "TRUE":
		p.next()
		return boolLit(true), nil
	case tok.Kind == sqlagg.TokKeyword && tok.Text == "FALSE":
		p.next()
		return boolLit(false), nil
	case tok.Kind == sqlagg.TokIdent:
		return p.parseAtom()
	default:
		return nil, p.errorf(tok.Pos, "expected a field name, TRUE, FALSE, NOT, or (, found %s %q", tok.Kind, tok.Text)
	}
}

// parseAtom parses one field-rooted atom:
//
//	field cmpOp literal
//	field [NOT] IN ( literal {, literal} )
//	field [NOT] LIKE 'pattern'
//	field [NOT] BETWEEN literal AND literal
func (p *parser) parseAtom() (expr, error) {
	tok := p.next()
	fi, ok := fields[strings.ToLower(tok.Text)]
	if !ok {
		return nil, p.errorf(tok.Pos, "unknown field %q (fields: %s)", tok.Text, strings.Join(Fields(), ", "))
	}

	neg := false
	if p.accept("NOT") {
		neg = true
		t := p.peek()
		if t.Kind != sqlagg.TokKeyword || (t.Text != "IN" && t.Text != "LIKE" && t.Text != "BETWEEN") {
			return nil, p.errorf(t.Pos, "expected IN, LIKE, or BETWEEN after NOT, found %s %q", t.Kind, t.Text)
		}
	}

	switch {
	case p.accept("IN"):
		if !p.acceptOp("(") {
			t := p.peek()
			return nil, p.errorf(t.Pos, "expected ( after IN, found %s %q", t.Kind, t.Text)
		}
		var lits []literal
		for {
			lit, err := p.parseLiteral(fi)
			if err != nil {
				return nil, err
			}
			lits = append(lits, lit)
			if p.acceptOp(",") {
				continue
			}
			if p.acceptOp(")") {
				break
			}
			t := p.peek()
			return nil, p.errorf(t.Pos, "expected , or ) in IN list, found %s %q", t.Kind, t.Text)
		}
		return &inExpr{f: fi, lits: lits, neg: neg}, nil

	case p.accept("LIKE"):
		if fi.typ != ftString && fi.typ != ftStrings {
			t := p.peek()
			return nil, p.errorf(t.Pos, "LIKE requires a string field, %s is %s", fi.name, fi.typ)
		}
		t := p.next()
		if t.Kind != sqlagg.TokString {
			return nil, p.errorf(t.Pos, "expected a string pattern after LIKE, found %s %q", t.Kind, t.Text)
		}
		return &likeExpr{f: fi, pattern: t.Text, neg: neg}, nil

	case p.accept("BETWEEN"):
		if fi.typ != ftInt && fi.typ != ftTime {
			t := p.peek()
			return nil, p.errorf(t.Pos, "BETWEEN requires an ordered field, %s is %s", fi.name, fi.typ)
		}
		lo, err := p.parseLiteral(fi)
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral(fi)
		if err != nil {
			return nil, err
		}
		return &betweenExpr{f: fi, lo: lo, hi: hi, neg: neg}, nil
	}

	t := p.next()
	if t.Kind != sqlagg.TokOp {
		return nil, p.errorf(t.Pos, "expected a comparison operator after %s, found %s %q", fi.name, t.Kind, t.Text)
	}
	op := t.Text
	if op == "<>" {
		op = "!="
	}
	switch op {
	case "=", "!=":
	case "<", "<=", ">", ">=":
		if fi.typ != ftInt && fi.typ != ftTime {
			return nil, p.errorf(t.Pos, "ordered comparison %s requires an ordered field, %s is %s", op, fi.name, fi.typ)
		}
	default:
		return nil, p.errorf(t.Pos, "unsupported operator %q", op)
	}
	lit, err := p.parseLiteral(fi)
	if err != nil {
		return nil, err
	}
	return &cmpExpr{f: fi, op: op, lit: lit}, nil
}

// parseLiteral parses one literal and checks it against the field's type.
// Integer fields take integer numbers; string fields take string
// literals; published takes an RFC 3339 (or date-only) string literal.
func (p *parser) parseLiteral(fi fieldInfo) (literal, error) {
	tok := p.next()
	switch fi.typ {
	case ftInt:
		neg := false
		if tok.Kind == sqlagg.TokOp && (tok.Text == "-" || tok.Text == "+") {
			neg = tok.Text == "-"
			tok = p.next()
		}
		if tok.Kind != sqlagg.TokNumber {
			return literal{}, p.errorf(tok.Pos, "%s requires an integer literal, found %s %q", fi.name, tok.Kind, tok.Text)
		}
		n, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return literal{}, p.errorf(tok.Pos, "%s requires an integer literal, %q is not one", fi.name, tok.Text)
		}
		if neg {
			n = -n
		}
		return literal{typ: ftInt, i: n}, nil

	case ftTime:
		if tok.Kind != sqlagg.TokString {
			return literal{}, p.errorf(tok.Pos, "%s requires a timestamp string literal, found %s %q", fi.name, tok.Kind, tok.Text)
		}
		ts, err := parseTimeLiteral(tok.Text)
		if err != nil {
			return literal{}, p.errorf(tok.Pos, "%s: %v", fi.name, err)
		}
		return literal{typ: ftTime, t: ts}, nil

	default: // ftString, ftStrings
		if tok.Kind != sqlagg.TokString {
			return literal{}, p.errorf(tok.Pos, "%s requires a string literal, found %s %q", fi.name, tok.Kind, tok.Text)
		}
		return literal{typ: ftString, s: tok.Text}, nil
	}
}

func parseTimeLiteral(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("%q is not an RFC 3339 timestamp or YYYY-MM-DD date", s)
}
