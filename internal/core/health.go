package core

import (
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/metrics"
	"newswire/internal/transport"
)

// HealthSummary is the cluster-wide (or per-subtree) rollup of the
// sys$health$ telemetry attributes: what /cluster-health.json serves.
// Every field is computed purely from replicated zone-table rows, so any
// node can produce it locally — no polling, no coordinator.
type HealthSummary struct {
	// Nodes counts members that have published a health digest.
	Nodes int64 `json:"nodes"`
	// Retries and DeliveryFailures sum the multicast reliability
	// counters across the subtree.
	Retries          int64 `json:"retries"`
	DeliveryFailures int64 `json:"deliveryFailures"`
	// CachePuts and CacheDups sum message-cache ingest counters; the
	// cluster's dedup hit rate is CacheDups/(CachePuts+CacheDups).
	CachePuts int64 `json:"cachePuts"`
	CacheDups int64 `json:"cacheDups"`
	// QueueDrops sums transport frames dropped at full queues or dead
	// connections; QueueHighWater is the deepest outbound queue anywhere.
	QueueDrops     int64 `json:"queueDrops"`
	QueueHighWater int64 `json:"queueHighWater"`
	// HeapBytesMax is the largest heap-in-use sample of any member (zero
	// when no node samples its heap, e.g. in simulation).
	HeapBytesMax int64 `json:"heapBytesMax,omitempty"`
	// WorstNode is the MAX-elected "badness|/zone/name" string: the most
	// troubled node and its position in the hierarchy.
	WorstNode string `json:"worstNode,omitempty"`
	// OldestRefresh is the stalest health digest in the subtree.
	OldestRefresh time.Time `json:"oldestRefresh,omitempty"`
	// Delivery-latency distribution from the merged quantile sketch
	// (seconds). Quantiles are sketch-accurate (γ=1.6 log buckets), which
	// is what makes p99 survive aggregation where a max-of-p99s cannot.
	LatencyCount uint64  `json:"latencyCount"`
	LatencyP50   float64 `json:"latencyP50"`
	LatencyP99   float64 `json:"latencyP99"`
	LatencyMean  float64 `json:"latencyMean"`
}

// SummarizeHealth folds the health attributes of a set of zone-table rows
// into one summary. Passing a node's root table yields the cluster-wide
// view; passing a single row yields that subtree's.
func SummarizeHealth(rows []astrolabe.Row) HealthSummary {
	var s HealthSummary
	var sketch *metrics.Sketch
	sumInto := func(dst *int64, r astrolabe.Row, attr string) {
		if v, ok := r.Attrs[attr].AsInt(); ok {
			*dst += v
		}
	}
	maxInto := func(dst *int64, r astrolabe.Row, attr string) {
		if v, ok := r.Attrs[attr].AsInt(); ok && v > *dst {
			*dst = v
		}
	}
	for _, r := range rows {
		sumInto(&s.Nodes, r, astrolabe.HealthSumPrefix+"nodes")
		sumInto(&s.Retries, r, astrolabe.HealthSumPrefix+"retries")
		sumInto(&s.DeliveryFailures, r, astrolabe.HealthSumPrefix+"dlvfail")
		sumInto(&s.CachePuts, r, astrolabe.HealthSumPrefix+"cacheput")
		sumInto(&s.CacheDups, r, astrolabe.HealthSumPrefix+"cachedup")
		sumInto(&s.QueueDrops, r, astrolabe.HealthSumPrefix+"qdrops")
		maxInto(&s.QueueHighWater, r, astrolabe.HealthMaxPrefix+"qhiwat")
		maxInto(&s.HeapBytesMax, r, astrolabe.HealthMaxPrefix+"heap")
		if w, ok := r.Attrs[astrolabe.HealthMaxPrefix+"worst"].AsString(); ok && w > s.WorstNode {
			s.WorstNode = w
		}
		if t, ok := r.Attrs[astrolabe.HealthMinPrefix+"refresh"].AsTime(); ok {
			if s.OldestRefresh.IsZero() || t.Before(s.OldestRefresh) {
				s.OldestRefresh = t
			}
		}
		if raw, ok := r.Attrs[astrolabe.HealthSketchPrefix+"dlvlat"].AsBytes(); ok {
			if sk, err := metrics.DecodeSketch(raw); err == nil {
				if sketch == nil {
					sketch = sk
				} else {
					sketch.Merge(sk)
				}
			}
		}
	}
	if sketch != nil {
		s.LatencyCount = sketch.Count()
		if s.LatencyCount > 0 {
			s.LatencyP50 = sketch.Quantile(0.5)
			s.LatencyP99 = sketch.Quantile(0.99)
			s.LatencyMean = sketch.Sum() / float64(s.LatencyCount)
		}
	}
	return s
}

// ClusterHealth summarizes the whole cluster from this node's root table.
// ok is false when the root table is not replicated yet (a node that has
// not finished joining).
func (n *Node) ClusterHealth() (HealthSummary, bool) {
	rows, ok := n.agent.Table(astrolabe.RootZone)
	if !ok {
		return HealthSummary{}, false
	}
	return SummarizeHealth(rows), true
}

// ZoneHealth summarizes each top-level subtree separately, keyed by zone
// path, from this node's root table.
func (n *Node) ZoneHealth() map[string]HealthSummary {
	rows, ok := n.agent.Table(astrolabe.RootZone)
	if !ok {
		return nil
	}
	out := make(map[string]HealthSummary, len(rows))
	for _, r := range rows {
		out[astrolabe.JoinZone(astrolabe.RootZone, r.Name)] = SummarizeHealth([]astrolabe.Row{r})
	}
	return out
}

// ClockOffsets returns the transport's per-peer clock-offset estimates
// when the node runs on a transport that measures them (the TCP transport
// does; the simulated transport shares one virtual clock and does not).
func (n *Node) ClockOffsets() map[string]transport.ClockOffset {
	if src, ok := n.cfg.Transport.(interface {
		ClockOffsets() map[string]transport.ClockOffset
	}); ok {
		return src.ClockOffsets()
	}
	return nil
}
