package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"newswire/internal/baseline"
	"newswire/internal/core"
	"newswire/internal/news"
	"newswire/internal/workload"
)

// RunE4 compares the publisher's egress under NewsWire against direct
// one-to-many unicast push — the claim that the system "significantly
// reduces the compute and network load at the publishers" (§Abstract, §2).
func RunE4(opt Options) *Table {
	sizes := []int{16, 128, 1024}
	if opt.Quick {
		sizes = []int{16, 128}
	}
	const itemsPublished = 10
	t := &Table{
		ID:    "E4",
		Title: "publisher egress: direct unicast push vs. NewsWire",
		Claim: "significantly reduces compute and network load at the publishers (§2)",
		Columns: []string{"subscribers", "direct msgs", "direct KB",
			"nw pub msgs", "nw pub KB", "msg reduction", "max node msgs"},
	}

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(opt.Seed + int64(n)))

		// Everyone subscribes to the published subject so both systems
		// deliver to the full audience.
		subject := "business/markets"

		// --- Direct push baseline ---
		direct := baseline.NewDirectPush()
		for i := 0; i < n; i++ {
			direct.Subscribe(fmt.Sprintf("s%d", i), []string{subject})
		}
		gen, _ := workload.NewArticleGen(workload.WireServiceProfile("reuters"), rng)
		items := make([]*news.Item, 0, itemsPublished)
		for len(items) < itemsPublished {
			it := gen.Next(timeAt(opt.Seed))
			it.Subjects = []string{subject}
			if it.Revision != 0 {
				continue
			}
			items = append(items, it)
		}
		for _, it := range items {
			direct.Publish(it)
		}
		ds := direct.Stats()

		// --- NewsWire ---
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: n, Branching: 16, Seed: opt.Seed + int64(n),
		})
		if err != nil {
			t.Notes = append(t.Notes, "cluster error: "+err.Error())
			return t
		}
		for _, node := range cluster.Nodes {
			_ = node.Subscribe(subject)
		}
		cluster.RunRounds(10)

		// Snapshot the publisher's traffic before publishing so gossip
		// warm-up is excluded.
		pub := cluster.Nodes[0]
		before := cluster.Net.Stats(pub.Addr())
		for _, it := range items {
			_ = pub.PublishItem(it, "", "")
		}
		cluster.RunFor(20 * time.Second)
		after := cluster.Net.Stats(pub.Addr())
		// Gossip continues during dissemination; isolate multicast
		// traffic via the router's forwarded counter instead of raw
		// endpoint bytes for messages, and report bytes as the envelope
		// share.
		pubMsgs := pub.Router().Stats().Forwarded
		pubBytes := after.BytesSent - before.BytesSent

		// Fairness: the heaviest forwarding load any single node bears.
		var maxForwarded int64
		for _, node := range cluster.Nodes {
			if f := node.Router().Stats().Forwarded; f > maxForwarded {
				maxForwarded = f
			}
		}

		reduction := "n/a"
		if pubMsgs > 0 {
			reduction = fmt.Sprintf("%.1fx", float64(ds.MsgsSent)/float64(pubMsgs))
		}
		t.AddRow(
			fmt.Sprint(n),
			fmtI(ds.MsgsSent),
			fmt.Sprintf("%.0f", float64(ds.BytesSent)/1024),
			fmtI(pubMsgs),
			fmt.Sprintf("%.0f", float64(pubBytes)/1024),
			reduction,
			fmtI(maxForwarded),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d items published; NewsWire publisher egress counts multicast forwards only (gossip excluded); nw pub KB includes concurrent gossip bytes", itemsPublished),
		"direct push also pays one subscription filter evaluation per subscriber per item at the publisher")
	return t
}

// timeAt gives experiments a fixed publication instant derived from the
// seed, keeping runs deterministic.
func timeAt(seed int64) time.Time {
	return time.Date(2002, time.April, 1, 12, 0, 0, 0, time.UTC).
		Add(time.Duration(seed%1000) * time.Second)
}
