// Package core composes the NewsWire node the paper describes (§8): "a
// single application that people can download and use to insert
// themselves into the Collaborative Content Delivery Network". A Node is
// an Astrolabe leaf agent, a multicast forwarding component, a pub/sub
// subscriber, an end-system message cache, and (optionally) an
// authenticated publisher — all behind one API. "Under the covers of the
// publisher is an application identical to the subscriber application
// core."
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"newswire/internal/astrolabe"
	"newswire/internal/bloom"
	"newswire/internal/cache"
	"newswire/internal/flow"
	"newswire/internal/metrics"
	"newswire/internal/multicast"
	"newswire/internal/news"
	"newswire/internal/pubsub"
	"newswire/internal/sqlagg"
	"newswire/internal/trace"
	"newswire/internal/transport"
	"newswire/internal/value"
	"newswire/internal/vtime"
	"newswire/internal/wire"
)

// ItemHandler receives items delivered to the local application, after
// dedup and the leaf's exact-match test.
type ItemHandler func(it *news.Item, env *wire.ItemEnvelope)

// Config configures a Node.
type Config struct {
	// Name is the node's row name, unique within its leaf zone.
	Name string
	// ZonePath is the node's leaf zone.
	ZonePath string
	// Transport carries all the node's traffic.
	Transport transport.Transport
	// Clock supplies time (vtime.Real{} live, virtual in simulation).
	Clock vtime.Clock
	// Rand drives gossip partner and representative choice. Required.
	Rand *rand.Rand

	// GossipInterval is the expected Tick cadence. Default 2s.
	GossipInterval time.Duration
	// FailTimeout is the leaf-row failure-detection timeout. Default
	// 10×GossipInterval.
	FailTimeout time.Duration
	// Fanout is gossip partners per level per Tick. Default 1.
	Fanout int
	// DisableDeltaGossip falls back to full-state anti-entropy exchanges
	// (see astrolabe.Config.DisableDeltaGossip). Delta gossip is the
	// default.
	DisableDeltaGossip bool

	// Mode is the subscription-summary representation. Default ModeBloom.
	Mode pubsub.Mode
	// Geometry is the Bloom geometry. Default pubsub.DefaultGeometry.
	Geometry pubsub.Geometry
	// Vocabulary backs ModeCategoryMask. Default news.StandardSubjects.
	Vocabulary []string
	// SubgroupK bounds subgroup filters per zone row (ModePredicate).
	// Default pubsub.DefaultSubgroupK.
	SubgroupK int

	// RepCount is the forwarding redundancy k. Default 1.
	RepCount int
	// Aggregation overrides the zone aggregation program.
	Aggregation *sqlagg.Program
	// Sender overrides direct sends in the forwarding component (queue
	// ablations).
	Sender multicast.Sender

	// AckTimeout, when positive, makes multicast forwarding reliable:
	// every forward requests an ack and unacknowledged forwards are
	// retransmitted with exponential backoff, failing over to the
	// next-best representative from the aggregated zone table. 0 (the
	// default) keeps fire-and-forget forwarding.
	AckTimeout time.Duration
	// MaxForwardAttempts caps transmissions per reliable forward
	// (initial send included). Default 4.
	MaxForwardAttempts int
	// After schedules delayed callbacks for the retransmit machinery.
	// NewCluster wires the simulation engine so retries run in virtual
	// time; live nodes may leave it nil to get time.AfterFunc.
	After func(d time.Duration, fn func())

	// CacheItems bounds the message cache. Default 1024.
	CacheItems int
	// CacheTTL ages cache entries out (0 = never).
	CacheTTL time.Duration
	// FuseRevisions keeps only the newest revision per item series.
	FuseRevisions bool

	// PublishRate and PublishBurst flow-control inbound publications per
	// publisher at this forwarder (0 disables admission control).
	PublishRate  float64
	PublishBurst float64

	// AntiEntropyEvery, when positive, makes the node exchange recent
	// cache contents with one random zone peer every that-many Ticks —
	// the background repair phase that gives the dissemination protocol
	// "many of the properties of Bimodal Multicast" (§5): items missed
	// by the best-effort multicast are recovered automatically without
	// an explicit RecoverFromZonePeer call. 0 disables it.
	AntiEntropyEvery int
	// AntiEntropyWindow bounds how far back each exchange looks.
	// Default 10×GossipInterval.
	AntiEntropyWindow time.Duration

	// Tracer receives delivery trace spans from the node's multicast
	// router, cache and state-transfer paths. Nil disables tracing; the
	// disabled path costs one pointer comparison per would-be span.
	Tracer trace.Recorder
	// LatencyReservoir caps the delivery-latency histogram's retained
	// sample buffer (metrics.Histogram.SetReservoir). <= 0 keeps every
	// sample — exact quantiles, right for bounded experiment runs; live
	// nodes should set a cap so the histogram cannot grow without bound.
	LatencyReservoir int

	// ReshareRecovered makes the node re-offer every item it recovers via
	// state transfer to its own leaf zone (Router.Reinject). A rejoining
	// node is often the only real agent in front of quiescent (virtual)
	// members; without resharing, items it recovers for itself would never
	// reach them. Idempotent — dedup logs absorb re-offers of items the
	// zone already handled.
	ReshareRecovered bool

	// Security enables certificates: signed rows, signed items, and
	// verification of both. Nil runs open (trusted network / simulation).
	Security *Security

	// HealthEvery, when positive, folds a digest of this node's own
	// telemetry — delivery-latency sketch, multicast retries and
	// failures, transport queue high-water and drops, cache hit counters,
	// optionally heap-in-use — into its astrolabe row every that-many
	// Ticks, under the reserved sys$health$ namespace. HealthRules then
	// aggregate the digests up the zone hierarchy, so any node can answer
	// cluster-wide health queries from its local table. 0 (the default)
	// disables health publication and installs no health aggregation
	// rules, keeping disabled-mode overhead at zero.
	HealthEvery int
	// HealthHeapBytes, when set alongside HealthEvery, samples the
	// process's heap-in-use for the sys$health$x$heap attribute. Live
	// nodes wire runtime.ReadMemStats here; simulations leave it nil —
	// real heap readings depend on the host scheduler and would make
	// otherwise-identical runs publish different bytes.
	HealthHeapBytes func() uint64

	// OnItem receives delivered items. Optional.
	OnItem ItemHandler
	// OnDeliveryFailure is called when a reliable forward is abandoned
	// after MaxForwardAttempts: the item's envelope key and trace ID, the
	// target zone, the last address tried, and the attempt count. Live
	// nodes hang structured logging here so operators can grep the trace
	// ID straight from the failure log into /trace.json. Optional.
	OnDeliveryFailure func(key string, traceID uint64, zone, to string, attempts int)
}

// Node is one NewsWire participant. It is safe for concurrent use: the
// live runtime calls HandleMessage from transport goroutines while a
// ticker drives Tick.
type Node struct {
	cfg     Config
	agent   *astrolabe.Agent
	router  *multicast.Router
	sub     *pubsub.Subscriber
	cache   *cache.Cache
	limit   *flow.Limiter
	latency *metrics.Histogram // publish-to-ingest delivery latency, seconds
	// hsketch mirrors latency into a mergeable quantile sketch when
	// HealthEvery is on; its encoding rides the sys$health$q$dlvlat
	// attribute so per-node latency distributions aggregate up the tree.
	hsketch metrics.Sketch
	// lastHealth is the previously published health digest (refresh
	// timestamp excluded): publishHealth re-issues the row only when the
	// digest changed, so an idle node's health attributes go quiet
	// instead of re-dirtying its zone every interval.
	lastHealth value.Map
	// routing collects routing-precision telemetry: positive forwarding
	// decisions, leaf exact matches vs false-positive drops, subgroup
	// filters consulted.
	routing pubsub.Counters

	mu         sync.Mutex
	delivered  int64
	recovered  int64     // items obtained via state transfer, not multicast
	lastSeen   time.Time // newest Published among delivered items
	gcCounter  int
	publishers map[string]bool // publishers this node announced
	// preDelivered marks item keys already counted as delivered before
	// this node existed as a real agent (its virtual-leaf phase, tracked
	// by bitset — core/virtual.go). Ingesting such an item again, e.g.
	// through post-materialization recovery, must not count it twice.
	preDelivered map[string]bool
}

// NewNode validates cfg and assembles a node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: clock required")
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("core: rand required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = pubsub.ModeBloom
	}
	if cfg.Geometry.Bits == 0 {
		cfg.Geometry = pubsub.DefaultGeometry
	}

	n := &Node{cfg: cfg, publishers: make(map[string]bool), latency: &metrics.Histogram{}}
	if cfg.LatencyReservoir > 0 {
		n.latency.SetReservoir(cfg.LatencyReservoir)
	}

	// Prefix rules follow the subscription mode.
	var prefixRules []astrolabe.PrefixRule
	switch cfg.Mode {
	case pubsub.ModeAttributes:
		prefixRules = append(prefixRules,
			astrolabe.PrefixRule{Prefix: pubsub.AttrSubPrefix, Op: astrolabe.PrefixBoolOr})
	case pubsub.ModeCategoryMask:
		prefixRules = append(prefixRules,
			astrolabe.PrefixRule{Prefix: pubsub.AttrPubPrefix, Op: astrolabe.PrefixBitOr})
	case pubsub.ModePredicate:
		prefixRules = append(prefixRules,
			astrolabe.PrefixRule{Prefix: pubsub.AttrSubGroups, Op: astrolabe.PrefixSubgroup})
	}
	if cfg.HealthEvery > 0 {
		prefixRules = append(prefixRules, astrolabe.HealthRules()...)
	}

	agentCfg := astrolabe.Config{
		Name:               cfg.Name,
		ZonePath:           cfg.ZonePath,
		Transport:          cfg.Transport,
		Clock:              cfg.Clock,
		Rand:               cfg.Rand,
		GossipInterval:     cfg.GossipInterval,
		FailTimeout:        cfg.FailTimeout,
		Fanout:             cfg.Fanout,
		DisableDeltaGossip: cfg.DisableDeltaGossip,
		Aggregation:        cfg.Aggregation,
		PrefixRules:        prefixRules,
	}
	if cfg.Security != nil {
		agentCfg.SignRow = cfg.Security.signRow
		agentCfg.VerifyRow = cfg.Security.verifyRow
	}
	agent, err := astrolabe.NewAgent(agentCfg)
	if err != nil {
		return nil, err
	}
	n.agent = agent

	sub, err := pubsub.NewSubscriber(pubsub.Config{
		Agent:      agent,
		Mode:       cfg.Mode,
		Geometry:   cfg.Geometry,
		Vocabulary: cfg.Vocabulary,
		SubgroupK:  cfg.SubgroupK,
		Counters:   &n.routing,
	})
	if err != nil {
		return nil, err
	}
	n.sub = sub

	store, err := cache.New(cache.Config{
		Clock:         cfg.Clock,
		MaxItems:      cfg.CacheItems,
		TTL:           cfg.CacheTTL,
		FuseRevisions: cfg.FuseRevisions,
		Tracer:        cfg.Tracer,
		TraceNode:     agent.Addr(),
	})
	if err != nil {
		return nil, err
	}
	n.cache = store

	routerCfg := multicast.Config{
		View:        agent,
		Transport:   cfg.Transport,
		RepCount:    cfg.RepCount,
		Rand:        cfg.Rand,
		Filter:      n.forwardFilter(),
		Deliver:     n.deliver,
		Sender:      cfg.Sender,
		AckTimeout:  cfg.AckTimeout,
		After:       cfg.After,
		MaxAttempts: cfg.MaxForwardAttempts,
		Tracer:      cfg.Tracer,
		Clock:       cfg.Clock,

		OnDeliveryFailure: cfg.OnDeliveryFailure,
	}
	if cfg.Security != nil {
		routerCfg.VerifyEnvelope = cfg.Security.verifyEnvelope
	}
	router, err := multicast.NewRouter(routerCfg)
	if err != nil {
		return nil, err
	}
	n.router = router

	if cfg.PublishRate > 0 {
		burst := cfg.PublishBurst
		if burst <= 0 {
			burst = cfg.PublishRate
		}
		limiter, err := flow.NewLimiter(cfg.Clock, cfg.PublishRate, burst)
		if err != nil {
			return nil, err
		}
		n.limit = limiter
	}
	return n, nil
}

// forwardFilter combines the mode's subscription-summary test with
// per-publisher admission control at this forwarding component (§8:
// forwarders "protect the system from flooding by publishers").
func (n *Node) forwardFilter() multicast.Filter {
	base := pubsub.ForwardFilter(n.cfg.Mode, n.cfg.Geometry, &n.routing)
	return func(zone string, row astrolabe.Row, env *wire.ItemEnvelope) bool {
		return base(zone, row, env)
	}
}

// Agent exposes the Astrolabe agent (experiments read its tables).
func (n *Node) Agent() *astrolabe.Agent { return n.agent }

// FillMetrics mirrors the node's cumulative gossip and forwarding
// counters into reg, under the astrolabe_* and multicast_* names.
// Counters are synced, not added, so calling it repeatedly (e.g. once per
// display refresh) never double counts.
func (n *Node) FillMetrics(reg *metrics.Registry) {
	st := n.agent.Stats()
	reg.Counter("astrolabe_gossips_sent").SyncTo(st.GossipsSent)
	reg.Counter("astrolabe_gossips_received").SyncTo(st.GossipsReceived)
	reg.Counter("astrolabe_gossip_bytes_sent").SyncTo(st.GossipBytesSent)
	reg.Counter("astrolabe_rows_sent").SyncTo(st.RowsSent)
	reg.Counter("astrolabe_digests_sent").SyncTo(st.DigestsSent)
	reg.Counter("astrolabe_rows_merged").SyncTo(st.RowsMerged)
	reg.Counter("astrolabe_agg_evals").SyncTo(st.AggEvals)
	rst := n.router.Stats()
	reg.Counter("multicast_published").SyncTo(rst.Published)
	reg.Counter("multicast_forwarded").SyncTo(rst.Forwarded)
	reg.Counter("multicast_delivered").SyncTo(rst.Delivered)
	reg.Counter("multicast_duplicates").SyncTo(rst.Duplicates)
	reg.Counter("multicast_acks_sent").SyncTo(rst.AcksSent)
	reg.Counter("multicast_acks_received").SyncTo(rst.AcksReceived)
	reg.Counter("multicast_retries_sent").SyncTo(rst.RetriesSent)
	reg.Counter("multicast_failovers_total").SyncTo(rst.FailoversTotal)
	reg.Counter("multicast_delivery_failures").SyncTo(rst.DeliveryFailures)
	pst := n.routing.Snapshot()
	reg.Counter("pubsub_forwards").SyncTo(pst.Forwards)
	reg.Counter("pubsub_false_positive_drops").SyncTo(pst.FalsePositiveDrops)
	reg.Counter("pubsub_exact_matches").SyncTo(pst.ExactMatches)
	reg.Counter("pubsub_subgroup_tests").SyncTo(pst.SubgroupTests)
	reg.Gauge("pubsub_subgroup_filters").Set(float64(n.SubgroupFilters()))
	cst := n.cache.Stats()
	reg.Counter("cache_puts").SyncTo(cst.Puts)
	reg.Counter("cache_duplicates").SyncTo(cst.Duplicates)
	reg.Counter("cache_fused").SyncTo(cst.Fused)
	reg.Counter("cache_expired").SyncTo(cst.Expired)
	reg.Counter("cache_evicted").SyncTo(cst.Evicted)
	reg.Gauge("cache_items").Set(float64(n.cache.Len()))
	reg.Gauge("newswire_delivered_items").Set(float64(n.Delivered()))
	reg.RegisterHistogram("newswire_delivery_latency_seconds", n.latency)
	if mf, ok := n.cfg.Transport.(transport.MetricsFiller); ok {
		mf.FillMetrics(reg)
	}
	metrics.CollectRuntime(reg)
}

// TransportStats returns the transport's data-path counters when the
// node runs on a transport that keeps them (the TCP transport does; the
// simulated transport does not).
func (n *Node) TransportStats() (transport.Stats, bool) {
	if src, ok := n.cfg.Transport.(transport.StatsSource); ok {
		return src.TransportStats(), true
	}
	return transport.Stats{}, false
}

// DeliveryLatency exposes the node's publish-to-ingest latency histogram
// (seconds). Bounded by Config.LatencyReservoir on live nodes.
func (n *Node) DeliveryLatency() *metrics.Histogram { return n.latency }

// Router exposes the multicast router (experiments read its stats).
func (n *Node) Router() *multicast.Router { return n.router }

// Cache exposes the message cache.
func (n *Node) Cache() *cache.Cache { return n.cache }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.agent.Addr() }

// Name returns the node's row name.
func (n *Node) Name() string { return n.agent.Name() }

// ZonePath returns the node's leaf zone.
func (n *Node) ZonePath() string { return n.agent.ZonePath() }

// Delivered returns how many distinct items reached the application.
func (n *Node) Delivered() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Recovered returns how many items this node obtained through §9 state
// transfer (rejoin/anti-entropy) rather than the multicast tree.
func (n *Node) Recovered() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recovered
}

// SeedDeliveredKeys records item keys that were already delivered to this
// member before it had a running agent (its virtual-leaf phase). The
// cluster calls it at materialization so a later re-ingest of the same
// item — a recovery pass after a crash, say — does not double-count in
// delivery accounting.
func (n *Node) SeedDeliveredKeys(keys []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.preDelivered == nil {
		n.preDelivered = make(map[string]bool, len(keys))
	}
	for _, k := range keys {
		n.preDelivered[k] = true
	}
}

// Subscribe adds subjects to the node's subscription set.
func (n *Node) Subscribe(subjects ...string) error {
	return n.sub.Subscribe(subjects...)
}

// Unsubscribe removes subjects.
func (n *Node) Unsubscribe(subjects ...string) {
	n.sub.Unsubscribe(subjects...)
}

// SubscribePublisher registers per-publisher category interest
// (ModeCategoryMask).
func (n *Node) SubscribePublisher(publisher string, categories ...string) error {
	return n.sub.SubscribePublisher(publisher, categories...)
}

// SetPredicate installs the subscriber's SQL selection query (§8).
func (n *Node) SetPredicate(expr string) error {
	return n.sub.SetPredicate(expr)
}

// SubscribeQuery registers a typed predicate subscription (ModePredicate)
// and returns its canonical form.
func (n *Node) SubscribeQuery(src string) (string, error) {
	return n.sub.SubscribeQuery(src)
}

// UnsubscribeQuery removes a predicate subscription.
func (n *Node) UnsubscribeQuery(src string) error {
	return n.sub.UnsubscribeQuery(src)
}

// Queries returns the node's predicate subscriptions in canonical form.
func (n *Node) Queries() []string { return n.sub.Queries() }

// Subjects returns the node's current subscriptions.
func (n *Node) Subjects() []string { return n.sub.Subjects() }

// RoutingStats snapshots the node's routing-precision counters.
func (n *Node) RoutingStats() pubsub.CounterSnapshot { return n.routing.Snapshot() }

// SubgroupFilters counts the subgroup signature filters advertised by the
// sibling rows of this node's zone chain — the rows its own forwarding
// decisions test. A low count with high precision means clustering is
// doing its job.
func (n *Node) SubgroupFilters() int {
	total := 0
	for _, zone := range n.agent.Chain() {
		rows, ok := n.agent.Table(zone)
		if !ok {
			continue
		}
		for _, r := range rows {
			if enc, ok := r.Attrs[pubsub.AttrSubGroups].RawBytes(); ok {
				total += bloom.SignatureSetLen(enc)
			}
		}
	}
	return total
}

// SetLoad advertises the node's load for representative election.
func (n *Node) SetLoad(load float64) {
	n.agent.SetAttr(astrolabe.AttrLoad, value.Float(load))
}

// Tick advances the node one gossip round, runs periodic cache GC and —
// when configured — one step of item anti-entropy.
func (n *Node) Tick() {
	n.agent.Tick()
	n.mu.Lock()
	n.gcCounter++
	runGC := n.gcCounter%10 == 0
	runAE := n.cfg.AntiEntropyEvery > 0 && n.gcCounter%n.cfg.AntiEntropyEvery == 0
	runHealth := n.cfg.HealthEvery > 0 && n.gcCounter%n.cfg.HealthEvery == 0
	n.mu.Unlock()
	if runGC {
		n.cache.GC()
	}
	if runAE {
		n.antiEntropyStep()
	}
	if runHealth {
		n.publishHealth()
	}
}

// publishHealth folds the node's current telemetry into its astrolabe row
// under the sys$health$ namespace. The digest is compared (refresh stamp
// excluded) against the last published one and the row is only re-issued
// on change, so quiescent nodes stop paying gossip bytes for health.
func (n *Node) publishHealth() {
	rst := n.router.Stats()
	cst := n.cache.Stats()
	attrs := value.Map{
		astrolabe.HealthSumPrefix + "nodes":    value.Int(1),
		astrolabe.HealthSumPrefix + "retries":  value.Int(rst.RetriesSent),
		astrolabe.HealthSumPrefix + "dlvfail":  value.Int(rst.DeliveryFailures),
		astrolabe.HealthSumPrefix + "cacheput": value.Int(cst.Puts),
		astrolabe.HealthSumPrefix + "cachedup": value.Int(cst.Duplicates),
	}
	var drops int64
	if ts, ok := n.TransportStats(); ok {
		drops = ts.QueueFullDrops + ts.ConnDrops
		attrs[astrolabe.HealthSumPrefix+"qdrops"] = value.Int(drops)
		attrs[astrolabe.HealthMaxPrefix+"qhiwat"] = value.Int(ts.QueueHighWater)
	}
	if n.cfg.HealthHeapBytes != nil {
		attrs[astrolabe.HealthMaxPrefix+"heap"] = value.Int(int64(n.cfg.HealthHeapBytes()))
	}
	// Worst-node election by lexical MAX: zero-padded badness score, then
	// the node's leaf zone and name, so the aggregated root value names
	// the most troubled node and where it sits in the hierarchy.
	attrs[astrolabe.HealthMaxPrefix+"worst"] = value.String(fmt.Sprintf(
		"%012d|%s/%s", drops+rst.DeliveryFailures+rst.RetriesSent,
		n.agent.ZonePath(), n.agent.Name()))
	if n.hsketch.Count() > 0 {
		attrs[astrolabe.HealthSketchPrefix+"dlvlat"] = value.Bytes(n.hsketch.Encode())
	}
	n.mu.Lock()
	unchanged := n.lastHealth != nil && n.lastHealth.Equal(attrs)
	if !unchanged {
		n.lastHealth = attrs.Clone()
	}
	n.mu.Unlock()
	if unchanged {
		return
	}
	published := attrs.Clone()
	published[astrolabe.HealthMinPrefix+"refresh"] = value.Time(n.cfg.Clock.Now())
	n.agent.SetAttrs(published)
}

// antiEntropyStep asks one random zone peer for items published inside
// the anti-entropy window that match this node's subscriptions. Replies
// dedup against the cache, so a fully caught-up node pays one small
// round trip.
func (n *Node) antiEntropyStep() {
	peers := n.recoveryCandidates()
	if len(peers) == 0 {
		return
	}
	peer := peers[n.cfg.Rand.Intn(len(peers))]
	window := n.cfg.AntiEntropyWindow
	if window <= 0 {
		interval := n.cfg.GossipInterval
		if interval <= 0 {
			interval = 2 * time.Second
		}
		window = 10 * interval
	}
	since := n.cfg.Clock.Now().Add(-window)
	_ = n.RequestStateTransfer(peer, since, 256)
}

// HandleMessage dispatches one inbound message to the right component.
func (n *Node) HandleMessage(msg *wire.Message) {
	switch msg.Kind {
	case wire.KindGossip, wire.KindGossipReply, wire.KindGossipDigest, wire.KindGossipDelta:
		n.agent.HandleMessage(msg)
	case wire.KindMulticast:
		if n.admit(msg) {
			n.router.HandleMessage(msg)
		}
	case wire.KindMulticastAck:
		n.router.HandleMessage(msg)
	case wire.KindStateRequest:
		n.handleStateRequest(msg)
	case wire.KindStateReply:
		n.handleStateReply(msg)
	}
}

// admit applies per-publisher flow control to forwarded publications.
func (n *Node) admit(msg *wire.Message) bool {
	if n.limit == nil || msg.Multicast == nil {
		return true
	}
	return n.limit.Allow(msg.Multicast.Envelope.Publisher, 1)
}

// DeniedPublications reports how many forwards were refused for a
// publisher by this node's admission control.
func (n *Node) DeniedPublications(publisher string) int64 {
	if n.limit == nil {
		return 0
	}
	return n.limit.Denied(publisher)
}

// deliver is the router's local-delivery callback: exact-match test,
// cache dedup, decode, hand to the application.
func (n *Node) deliver(env *wire.ItemEnvelope) {
	if !n.sub.ShouldDeliver(env) {
		return
	}
	n.ingest(env)
}

// ingest stores and (if new) surfaces one envelope, reporting whether the
// item was new to this node.
func (n *Node) ingest(env *wire.ItemEnvelope) bool {
	if !n.cache.Put(*env) {
		return false // duplicate or superseded
	}
	n.mu.Lock()
	if n.preDelivered != nil && n.preDelivered[env.Key()] {
		// Already counted during this member's virtual-leaf phase: keep
		// the cached copy (it can serve recovery) but skip the delivery
		// count, latency sample, and application callback.
		if env.Published.After(n.lastSeen) {
			n.lastSeen = env.Published
		}
		n.mu.Unlock()
		return true
	}
	n.mu.Unlock()
	lat := n.cfg.Clock.Now().Sub(env.Published).Seconds()
	n.latency.Observe(lat)
	if n.cfg.HealthEvery > 0 {
		n.hsketch.Observe(lat)
	}
	n.mu.Lock()
	n.delivered++
	if env.Published.After(n.lastSeen) {
		n.lastSeen = env.Published
	}
	n.mu.Unlock()
	if n.cfg.OnItem == nil {
		return true
	}
	it, err := pubsub.DecodeItem(env)
	if err != nil {
		return true // malformed payload; cached copy retained for forensics
	}
	n.cfg.OnItem(it, env)
	return true
}

// traceSpan stamps and records one span. Callers nil-check cfg.Tracer
// first, so disabled tracing never reaches this function.
func (n *Node) traceSpan(s trace.Span) {
	s.Node = n.agent.Addr()
	s.At = n.cfg.Clock.Now()
	n.cfg.Tracer.Record(s)
}

// PublishItem injects a news item into the network, disseminating to
// every subscribed leaf under scope ("" = everywhere). predicate
// optionally gates forwarding on zone/member attributes (§8).
func (n *Node) PublishItem(it *news.Item, scope, predicate string) error {
	if err := it.Validate(); err != nil {
		return err
	}
	if predicate != "" {
		if _, err := sqlagg.ParsePredicate(predicate); err != nil {
			return err
		}
	}
	if n.limit != nil && !n.limit.Allow(it.Publisher, 1) {
		return fmt.Errorf("core: publisher %q over admission rate", it.Publisher)
	}
	env, err := pubsub.EncodeItem(it, n.cfg.Mode, n.cfg.Geometry, n.cfg.Vocabulary)
	if err != nil {
		return err
	}
	env.Predicate = predicate
	if scope == "" {
		scope = astrolabe.RootZone
	}
	// The scope is covered by the signature, so stamp it before signing
	// (Router.Publish re-stamps the identical value).
	env.ScopeZone = scope
	if n.cfg.Security != nil {
		if err := n.cfg.Security.signEnvelope(&env); err != nil {
			return err
		}
	}
	n.announcePublisher(it.Publisher)
	return n.router.Publish(env, scope)
}

// announcePublisher adds the publisher to this node's roster attribute so
// the UNION aggregation advertises it system-wide.
func (n *Node) announcePublisher(publisher string) {
	n.mu.Lock()
	if n.publishers[publisher] {
		n.mu.Unlock()
		return
	}
	n.publishers[publisher] = true
	names := make([]string, 0, len(n.publishers))
	for p := range n.publishers {
		names = append(names, p)
	}
	n.mu.Unlock()
	sort.Strings(names)
	n.agent.SetAttr(astrolabe.AttrPubs, value.Strings(names))
}

// KnownPublishers returns the system-wide publisher roster visible in the
// node's root table.
func (n *Node) KnownPublishers() []string {
	rows, ok := n.agent.Table(astrolabe.RootZone)
	if !ok {
		return nil
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		if pubs, ok := r.Attrs[astrolabe.AttrPubs].AsStrings(); ok {
			for _, p := range pubs {
				seen[p] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IntroduceTo sends this node's chain rows to the given peers as a
// gossip request; their replies carry the tables the two sides share,
// bootstrapping the joiner's replicas. Joining a zone whose members the
// node does not know yet requires introducing to at least one member (or
// representative) of that zone — gossip with siblings alone cannot reveal
// a foreign zone's leaf table. ZoneRepresentatives on a bootstrap peer
// supplies suitable targets.
func (n *Node) IntroduceTo(peers ...string) {
	msg := &wire.Message{
		Kind: wire.KindGossip,
		Gossip: &wire.Gossip{
			FromZone: n.agent.ZonePath(),
			Rows:     n.agent.ChainRowUpdates(),
		},
	}
	for _, peer := range peers {
		_ = n.cfg.Transport.Send(peer, msg)
	}
}

// ZoneRepresentatives reads the representative addresses this node's
// tables list for an arbitrary zone, walking down from the root. Used by
// join flows to find introduction targets inside a placement zone.
func (n *Node) ZoneRepresentatives(zone string) []string {
	parent, ok := astrolabe.ParentZone(zone)
	if !ok {
		return nil
	}
	row, ok := n.agent.Row(parent, astrolabe.ZoneName(zone))
	if !ok {
		return nil
	}
	if reps, ok := row.Attrs[astrolabe.AttrReps].AsStrings(); ok {
		return reps
	}
	if addr, ok := row.Attrs[astrolabe.AttrAddr].AsString(); ok {
		return []string{addr}
	}
	return nil
}

// RequestStateTransfer asks a peer's cache for items published since t
// that match this node's subscriptions — the joining/recovery path of §9.
func (n *Node) RequestStateTransfer(peer string, since time.Time, maxItems int) error {
	subjects := n.sub.Subjects()
	if n.cfg.Mode == pubsub.ModePredicate && len(n.sub.Queries()) > 0 {
		// Predicate subscriptions can match items outside the plain
		// subject set; ask for the whole window and let ShouldDeliver
		// filter the reply exactly.
		subjects = nil
	}
	return n.cfg.Transport.Send(peer, &wire.Message{
		Kind: wire.KindStateRequest,
		StateRequest: &wire.StateRequest{
			Since:    since,
			MaxItems: maxItems,
			Subjects: subjects,
		},
	})
}

// RecoverFromZonePeer requests the items published after the newest item
// this node has seen from up to three peers: same-zone members first,
// then representatives of sibling zones up the chain (a whole leaf zone
// can miss an item when its only representative died, so intra-zone peers
// are not always enough). This is the end-to-end recovery of §9.
func (n *Node) RecoverFromZonePeer(maxItems int) error {
	n.mu.Lock()
	since := n.lastSeen
	n.mu.Unlock()
	return n.recoverSince(since, maxItems)
}

// Resync is the deep-recovery escalation: request everything, since the
// epoch, from up to three recovery candidates. Incremental recovery keys
// off the lastSeen watermark and therefore cannot fill a hole that is
// older than the newest delivered item — a zone that exhausted its
// retransmit budget on one mid-partition item but kept receiving later
// publications is permanently stuck under RecoverFromZonePeer alone.
func (n *Node) Resync(maxItems int) error {
	return n.recoverSince(time.Time{}, maxItems)
}

func (n *Node) recoverSince(since time.Time, maxItems int) error {
	peers := n.recoveryCandidates()
	if len(peers) == 0 {
		return fmt.Errorf("core: no peers to recover from")
	}
	n.cfg.Rand.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > 3 {
		peers = peers[:3]
	}
	var firstErr error
	for _, peer := range peers {
		if err := n.RequestStateTransfer(peer, since, maxItems); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// recoveryCandidates lists peer addresses whose caches may hold missed
// items: leaf-zone members, then sibling-zone representatives at every
// level.
func (n *Node) recoveryCandidates() []string {
	seen := map[string]bool{n.Addr(): true}
	var out []string
	add := func(addr string) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	if rows, ok := n.agent.Table(n.agent.ZonePath()); ok {
		for _, r := range rows {
			if r.Name == n.agent.Name() {
				continue
			}
			if _, virt := r.Attrs[astrolabe.AttrVirtual]; virt {
				continue // virtual leaves hold no cache to recover from
			}
			if addr, ok := r.Attrs[astrolabe.AttrAddr].AsString(); ok {
				add(addr)
			}
		}
	}
	chain := n.agent.Chain()
	for i := len(chain) - 2; i >= 0; i-- {
		zone := chain[i]
		rows, ok := n.agent.Table(zone)
		if !ok {
			continue
		}
		for _, r := range rows {
			if reps, ok := r.Attrs[astrolabe.AttrReps].AsStrings(); ok {
				for _, rep := range reps {
					add(rep)
				}
			}
		}
	}
	return out
}

func (n *Node) handleStateRequest(msg *wire.Message) {
	req := msg.StateRequest
	maxItems := req.MaxItems
	if maxItems <= 0 || maxItems > 4096 {
		maxItems = 4096
	}
	envs, truncated := n.cache.Since(req.Since, req.Subjects, maxItems)
	if n.cfg.Tracer != nil && len(envs) > 0 {
		n.traceSpan(trace.Span{
			Kind: trace.KindCacheServe, Zone: n.agent.ZonePath(),
			To: msg.From, Note: fmt.Sprintf("%d items", len(envs)),
		})
	}
	_ = n.cfg.Transport.Send(msg.From, &wire.Message{
		Kind:       wire.KindStateReply,
		StateReply: &wire.StateReply{Envelopes: envs, Truncated: truncated},
	})
}

func (n *Node) handleStateReply(msg *wire.Message) {
	for i := range msg.StateReply.Envelopes {
		env := &msg.StateReply.Envelopes[i]
		if n.cfg.Security != nil {
			if err := n.cfg.Security.verifyEnvelope(env); err != nil {
				continue
			}
		}
		if !n.sub.ShouldDeliver(env) {
			continue
		}
		if !n.ingest(env) {
			continue
		}
		n.mu.Lock()
		n.recovered++
		n.mu.Unlock()
		if n.cfg.Tracer != nil {
			// Recovered through anti-entropy / state transfer rather than
			// the multicast tree — the "gossip-carry" path of §5/§9.
			n.traceSpan(trace.Span{
				Kind: trace.KindGossipCarry, Key: env.Key(),
				TraceID: trace.DeriveTraceID(env.Key()),
				Zone:    n.agent.ZonePath(), To: msg.From,
			})
		}
		if n.cfg.ReshareRecovered {
			n.router.Reinject(env)
		}
	}
}

// ScrambleReport tallies what one ScrambleState call damaged.
type ScrambleReport struct {
	Rows    int // zone-table rows corrupted/permuted
	Dedup   int // dedup-log entries dropped
	Pending int // pending reliable forwards dropped
}

// ScrambleState is the chaos hook: it corrupts a fraction frac of this
// node's replicated zone-table rows (astrolabe.Agent.ScrambleRows) and
// drops the same fraction of its multicast dedup and retransmit state
// (multicast.Router.ScrambleState). rng must be owned by the caller and is
// drawn in canonical order, keeping identically seeded runs bit-identical.
func (n *Node) ScrambleState(rng *rand.Rand, frac float64) ScrambleReport {
	rows := n.agent.ScrambleRows(rng, frac)
	dedup, pending := n.router.ScrambleState(rng, frac)
	return ScrambleReport{Rows: rows, Dedup: dedup, Pending: pending}
}
