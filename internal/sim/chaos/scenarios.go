package chaos

import "time"

// subjectPool is the shared 8-subject subscription universe; burst events
// draw from it zipf-skewed, so low indices are the hot keys.
var subjectPool = []string{
	"tech/security", "tech/ai",
	"world/politics", "world/markets",
	"sci/space", "sci/bio",
	"sport/football", "culture/film",
}

// Scenarios returns the registry of named adversarial scenarios, in
// display order. Every scenario must converge back to 100% delivery
// within its MaxRounds — benchgate enforces that plus the per-scenario
// delivery floor.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// A 3-zone region is cut off mid-stream: items published both
			// before and during the partition must reach both sides after
			// the heal.
			Name: "partition-heal", Nodes: 96, Branching: 16,
			AckTimeout: time.Second, Warmup: 8,
			Events: []Event{
				{Kind: PublishBurst, Round: 0, Count: 6},
				{Kind: PartitionRegions, Round: 1, Split: 3},
				{Kind: PublishBurst, Round: 2, Count: 6},
				{Kind: HealPartition, Round: 5},
			},
			MaxRounds: 8, QuietRounds: 3, DeliveryFloor: 0.45,
			Subjects: subjectPool, SeedOffset: 101,
		},
		{
			// Poisson crash/rejoin storm over a mostly-virtual cluster:
			// victims materialize, crash, and rejoin via §9 recovery.
			Name: "churn-storm", Nodes: 256, Branching: 16,
			VirtualLeaves: true, AckTimeout: time.Second,
			MaxForwardAttempts: 6, Warmup: 8,
			Events: []Event{
				{Kind: ChurnStorm, Round: 0, Rounds: 6, Rate: 1.5, DownRounds: 3},
				{Kind: PublishBurst, Round: 1, Count: 8},
				{Kind: PublishBurst, Round: 4, Count: 8},
			},
			MaxRounds: 10, QuietRounds: 3, DeliveryFloor: 0.55,
			Subjects: subjectPool, SeedOffset: 202,
		},
		{
			// Mid-run state scramble in open (unsigned) mode: corrupted
			// rows carry stale stamps, so owner heartbeats supersede them
			// and the tables must converge back to the clean twin's.
			Name: "scramble-converge", Nodes: 96, Branching: 16,
			Predicate:  true,
			AckTimeout: time.Second, Warmup: 8,
			Events: []Event{
				{Kind: PublishBurst, Round: 0, Count: 8},
				{Kind: ScrambleState, Round: 1, Frac: 0.35},
			},
			MaxRounds: 6, QuietRounds: 5, DeliveryFloor: 0.55,
			Subjects: subjectPool, SeedOffset: 303,
		},
		{
			// The same scramble under certificates: corrupted rows keep a
			// signature that no longer matches their payload, so peers
			// must reject them outright (RowsRejected > 0).
			Name: "corrupt-reject", Nodes: 64, Branching: 16,
			Security: true, AckTimeout: time.Second, Warmup: 8,
			Events: []Event{
				{Kind: PublishBurst, Round: 0, Count: 8},
				{Kind: ScrambleState, Round: 1, Frac: 0.3},
			},
			MaxRounds: 6, QuietRounds: 5, DeliveryFloor: 0.55,
			Subjects: subjectPool, SeedOffset: 404,
		},
		{
			// Linearly ramping global link loss with publishes at the
			// ramp's shoulder and peak; ack/retry forwarding rides it out.
			Name: "loss-ramp", Nodes: 96, Branching: 16,
			AckTimeout: time.Second, MaxForwardAttempts: 6, Warmup: 8,
			Events: []Event{
				{Kind: LinkLossRamp, Round: 0, Rounds: 6, Rate: 0.30},
				{Kind: PublishBurst, Round: 1, Count: 6},
				{Kind: PublishBurst, Round: 3, Count: 6},
			},
			MaxRounds: 8, QuietRounds: 3, DeliveryFloor: 0.50,
			Subjects: subjectPool, SeedOffset: 505,
		},
		{
			// Zipf hot-key bursts, no faults: the baseline that pins the
			// floor near 1 and catches regressions in plain fan-out.
			Name: "hot-keys", Nodes: 96, Branching: 16,
			Predicate:  true,
			AckTimeout: time.Second, Warmup: 8,
			Events: []Event{
				{Kind: PublishBurst, Round: 0, Rounds: 3, Count: 20, ZipfS: 1.3},
			},
			MaxRounds: 4, QuietRounds: 3, DeliveryFloor: 0.80,
			Subjects: subjectPool, SeedOffset: 606,
		},
		{
			// Everything at once: partition + churn + loss ramp + bursts,
			// then a scramble after the dust settles.
			Name: "kitchen-sink", Nodes: 256, Branching: 16,
			VirtualLeaves: true, AckTimeout: time.Second,
			MaxForwardAttempts: 8, Warmup: 8,
			Events: []Event{
				{Kind: PublishBurst, Round: 0, Count: 6},
				{Kind: PartitionRegions, Round: 1, Split: 8},
				{Kind: ChurnStorm, Round: 2, Rounds: 4, Rate: 1.0, DownRounds: 3},
				{Kind: PublishBurst, Round: 3, Count: 6},
				{Kind: LinkLossRamp, Round: 4, Rounds: 4, Rate: 0.20},
				{Kind: HealPartition, Round: 6},
				{Kind: PublishBurst, Round: 8, Count: 6},
				{Kind: ScrambleState, Round: 10, Frac: 0.25},
			},
			MaxRounds: 14, QuietRounds: 5, DeliveryFloor: 0.30,
			Subjects: subjectPool, SeedOffset: 707,
		},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// QuickNames is the PR-gate subset: one partition scenario and one
// scramble scenario, small enough for a smoke job.
func QuickNames() []string {
	return []string{"partition-heal", "scramble-converge"}
}
